// Package scenario loads real-time system descriptions from JSON and
// elaborates them into runnable rtos systems.
//
// It stands in for the graphical capture tool and SystemC code generator of
// the paper ([8], [12]): the same modelling vocabulary — processors with an
// RTOS configuration, software tasks with time-annotated behaviours,
// hardware tasks, and the MCSE relations (events, message queues, shared
// variables) — is expressed declaratively and interpreted against the model
// API, so systems can be simulated from a description file without writing
// Go code.
package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Duration is a sim.Time that unmarshals from strings like "5us", "1.5ms",
// "250ns" or from a plain number of picoseconds.
type Duration sim.Time

// Time returns the duration as a sim.Time.
func (d Duration) Time() sim.Time { return sim.Time(d) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] != '"' {
		var ps int64
		if err := json.Unmarshal(b, &ps); err != nil {
			return err
		}
		*d = Duration(ps)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	t, err := ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(t)
	return nil
}

// ParseDuration parses "5us", "1.5ms", "3s", "250ns", "7ps".
func ParseDuration(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		mul    sim.Time
	}{
		{"ps", sim.Ps}, {"ns", sim.Ns}, {"us", sim.Us}, {"ms", sim.Ms}, {"s", sim.Sec},
	}
	for _, u := range units {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
		// "s" also matches "us" etc.; require the numeric part to parse.
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			continue
		}
		if v < 0 {
			return 0, fmt.Errorf("scenario: negative duration %q", s)
		}
		if v*float64(u.mul) >= float64(sim.TimeMax) {
			return 0, fmt.Errorf("scenario: duration %q overflows the simulated time range", s)
		}
		return u.mul.Scale(v), nil
	}
	return 0, fmt.Errorf("scenario: cannot parse duration %q (want e.g. \"5us\", \"1.5ms\")", s)
}

// System is the root of a scenario description.
type System struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Horizon bounds the simulation; zero runs to event starvation.
	Horizon Duration `json:"horizon"`
	// TimedQueue selects the kernel's timed-queue backend: "wheel" (the
	// default) or "heap". The backends are behaviorally equivalent; the knob
	// exists for differential testing and for tiny models where the heap's
	// footprint wins.
	TimedQueue string `json:"timedQueue,omitempty"`
	// AutoEngine, when explicitly false, opts the scenario out of automatic
	// task-engine selection: tasks whose engine field is unset then always
	// run goroutine bodies. Absent (or true), Build probes each unset task
	// with rtos.LowerBody and runs it on the continuation engine when the
	// body lowers cleanly; both forms produce identical simulated behaviour
	// (see the engine field of SWTask).
	AutoEngine *bool `json:"autoEngine,omitempty"`

	Processors  []Processor  `json:"processors"`
	Events      []Event      `json:"events"`
	Queues      []Queue      `json:"queues"`
	Shared      []Shared     `json:"shared"`
	Constraints []Constraint `json:"constraints"`
	// Traces are named sequences of execution durations for trace-driven
	// simulation: an execute_trace op consumes them in order, wrapping
	// around (e.g. per-frame decode times measured on a reference platform).
	Traces    map[string][]Duration `json:"traces"`
	IRQs      []IRQDef              `json:"irqs"`
	Buses     []BusDef              `json:"buses"`
	Channels  []ChannelDef          `json:"channels"`
	Servers   []ServerDef           `json:"servers"`
	Tasks     []SWTask              `json:"tasks"`
	Hardware  []HWTask              `json:"hardware"`
	Faults    []FaultDef            `json:"faults"`
	Watchdogs []WatchdogDef         `json:"watchdogs"`

	// Explore parameterizes schedule-space exploration (rtossim explore,
	// package explore); plain simulation runs ignore it.
	Explore *ExploreSpec `json:"explore,omitempty"`
}

// ExploreSpec bounds and parameterizes schedule-space exploration: which
// release-jitter perturbations to enumerate, how far to search, and which
// outcomes count as expected rather than as invariant violations.
type ExploreSpec struct {
	// MaxRuns bounds the number of enumerated interleavings (default 256).
	MaxRuns int `json:"maxRuns"`
	// MaxDepth bounds how many choice points of a run may be branched on
	// (default 32). Deeper choice points always take their default.
	MaxDepth int `json:"maxDepth"`
	// JitterSteps is the number of quantized candidate values enumerated per
	// jittered release, spread evenly over [0, bound] (default 3: 0, bound/2,
	// bound). The task's nominal jitter value is always a candidate too.
	JitterSteps int `json:"jitterSteps"`
	// MaxBranch caps the alternatives enumerated at one choice point; larger
	// decision spaces are truncated and the truncation is reported (default
	// 24, i.e. full coverage of same-instant batches up to 4 conflicting
	// entries).
	MaxBranch int `json:"maxBranch"`
	// Jitter declares (or overrides) the per-task release-jitter bounds the
	// explorer perturbs within. Tasks must be periodic and the bound smaller
	// than the period. A task listed here with no jitter in its own
	// definition gets nominal jitter zero, so the default decision
	// reproduces the unjittered seed run.
	Jitter map[string]Duration `json:"jitter"`
	// ExpectedMiss lists tasks whose deadline misses are expected and not
	// violations. Misses of the unperturbed baseline run are always
	// expected: the explorer flags only interleavings that create new ones.
	ExpectedMiss []string `json:"expectedMiss"`
	// MaxInversion bounds the longest tolerated priority-inversion interval
	// of any task; zero disables the check.
	MaxInversion Duration `json:"maxInversion"`
	// CheckEngines re-runs every explored interleaving on the other RTOS
	// engine and requires identical trace signatures.
	CheckEngines bool `json:"checkEngines"`
}

// FaultDef describes one injected fault. The fields used depend on Kind:
//
//	wcet_overrun {task, factor and/or extra, probability?, seed?, after?, until?}
//	    every affected execute of the task takes factor times its duration
//	    plus extra; probability selects affected calls (omitted: all of them)
//	crash {task, at}
//	    the task's job in flight at time at is aborted at its next execute
//	    or delay; a periodic task resumes at its next release, a one-shot
//	    task terminates
//	hang {task, at, for?}
//	    at its next execute instant after at, the task stops consuming
//	    processor time for the given duration — forever when for is omitted,
//	    in which case only a watchdog recovers it
//	irq_drop {irq, probability?, seed?}
//	    a fraction of raises of the line vanish (omitted probability: all)
//	irq_latency {irq, extra, probability?, seed?}
//	    a fraction of ISR activations suffer extra dispatch latency
type FaultDef struct {
	Kind string `json:"kind"`
	// Task names the target software task (task-directed kinds).
	Task string `json:"task"`
	// IRQ names the target interrupt line (irq-directed kinds).
	IRQ string `json:"irq"`
	// At is the absolute injection instant (crash, hang).
	At Duration `json:"at"`
	// For is the hang duration; zero or omitted hangs forever.
	For Duration `json:"for"`
	// Factor multiplies execute durations (wcet_overrun); 0 means 1.
	Factor float64 `json:"factor"`
	// Extra is added per execute (wcet_overrun) or per activation (irq_latency).
	Extra Duration `json:"extra"`
	// Probability in [0,1] selects affected occurrences; 0 or 1 means all.
	Probability float64 `json:"probability"`
	// Seed drives the deterministic per-occurrence decisions.
	Seed int64 `json:"seed"`
	// After/Until bound the active window of a wcet_overrun fault.
	After Duration `json:"after"`
	Until Duration `json:"until"`
}

// WatchdogDef describes a per-processor watchdog timer. Task bodies pet it
// with the kick op; when the timeout elapses without a kick it fires,
// aborting and restarting the guarded task's job in flight (if any).
type WatchdogDef struct {
	Name      string   `json:"name"`
	Processor string   `json:"processor"`
	Timeout   Duration `json:"timeout"`
	// Task is the software task restarted on firing; empty means the
	// watchdog only records the event.
	Task string `json:"task"`
}

// BusDef describes a shared interconnect.
type BusDef struct {
	Name string `json:"name"`
	// PerByte is the transfer time per byte.
	PerByte Duration `json:"perByte"`
	// Arbitration is the fixed per-transfer acquisition cost.
	Arbitration Duration `json:"arbitration"`
}

// ChannelDef describes a message channel routed over a bus.
type ChannelDef struct {
	Name     string `json:"name"`
	Bus      string `json:"bus"`
	Capacity int    `json:"capacity"`
	// MessageBytes is the payload size charged per message (default 1).
	MessageBytes int `json:"messageBytes"`
}

// ServerDef describes an aperiodic server.
type ServerDef struct {
	Name      string `json:"name"`
	Processor string `json:"processor"`
	// Kind: "polling", "deferrable" or "sporadic".
	Kind     string   `json:"kind"`
	Priority int      `json:"priority"`
	Period   Duration `json:"period"`
	Budget   Duration `json:"budget"`
	QueueCap int      `json:"queueCap"`
}

// IRQDef describes an interrupt line and its service routine. ISR bodies
// may only use non-blocking operations: execute, signal, tryput, lat_start,
// lat_stop and repeat.
type IRQDef struct {
	Name      string   `json:"name"`
	Processor string   `json:"processor"`
	Priority  int      `json:"priority"`
	Latency   Duration `json:"latency"`
	Body      []Op     `json:"body"`
}

// Processor describes a software processor and its RTOS configuration.
type Processor struct {
	Name string `json:"name"`
	// Engine: "procedural" (default) or "threaded".
	Engine string `json:"engine"`
	// Policy: "priority" (default), "fifo", "rr", "edf".
	Policy string `json:"policy"`
	// Quantum is the round-robin time slice (required for "rr").
	Quantum Duration `json:"quantum"`
	// NonPreemptive starts the processor in non-preemptive mode.
	NonPreemptive bool `json:"nonPreemptive"`
	// Speed is the execution-rate factor relative to the reference
	// processor (0 means 1.0).
	Speed float64 `json:"speed"`
	// Cores is the number of symmetric cores (0 means 1, the paper's
	// single-CPU model).
	Cores int `json:"cores"`
	// Domain: "partitioned" (default; tasks pinned per their affinity) or
	// "global" (one shared ready queue, tasks migrate between cores).
	Domain string `json:"domain"`
	// Overheads are the three RTOS durations (fixed values).
	Overheads OverheadSpec `json:"overheads"`
	// Shard labels the parallel shard group this processor belongs to when
	// the sharded multi-kernel engine runs the scenario. Processors sharing
	// a label are pinned onto one kernel; empty leaves placement to the
	// partitioner. Processors that interact through anything but
	// latency-bearing channels are co-located regardless of labels.
	Shard string `json:"shard,omitempty"`
}

// OverheadSpec configures the three RTOS overhead durations. SchedulingPerReady
// adds a per-ready-task slope to the scheduling duration.
type OverheadSpec struct {
	Scheduling         Duration `json:"scheduling"`
	SchedulingPerReady Duration `json:"schedulingPerReady"`
	ContextSave        Duration `json:"contextSave"`
	ContextLoad        Duration `json:"contextLoad"`
}

// Event describes an MCSE event relation.
type Event struct {
	Name string `json:"name"`
	// Policy: "fugitive" (default), "boolean", "counter".
	Policy string `json:"policy"`
}

// Queue describes an MCSE message-queue relation carrying opaque tokens.
type Queue struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
}

// Shared describes an MCSE shared-variable relation holding an integer.
type Shared struct {
	Name    string `json:"name"`
	Initial int    `json:"initial"`
	// Inherit enables the priority-inheritance protocol on its lock.
	Inherit bool `json:"inherit"`
}

// Constraint describes a latency constraint driven by lat_start/lat_stop ops.
type Constraint struct {
	Name  string   `json:"name"`
	Limit Duration `json:"limit"`
}

// SWTask describes a software task.
type SWTask struct {
	Name      string `json:"name"`
	Processor string `json:"processor"`
	Priority  int    `json:"priority"`
	// Affinity pins the task to a core of a partitioned multi-core
	// processor (default core 0). Must be 0 under the global domain.
	Affinity int `json:"affinity"`
	// StartAt delays the first release.
	StartAt Duration `json:"startAt"`
	// Period makes the task periodic (its body runs once per release).
	Period Duration `json:"period"`
	// Deadline is the relative deadline (EDF, periodic watchdog).
	Deadline Duration `json:"deadline"`
	// Jitter is the maximum release jitter of a periodic task.
	Jitter Duration `json:"jitter"`
	// Loop repeats the body forever (aperiodic cyclic task).
	Loop bool `json:"loop"`
	// Repeat runs the body a fixed number of times (default 1).
	Repeat int `json:"repeat"`
	// OnMiss selects the deadline-miss recovery policy of a periodic task:
	// "continue" (default), "abort", "skip_next" or "restart".
	OnMiss string `json:"onMiss"`
	// Engine selects the task-body execution form: "goroutine" (the
	// default; the body runs on its own simulation thread) or
	// "continuation" (the body is compiled to a yield-op program resumed
	// inline by the kernel, with no thread and no per-switch parking).
	// Both forms produce identical simulated behaviour; continuation
	// bodies cannot use the send/recv bus ops.
	Engine string `json:"engine"`
	Body   []Op   `json:"body"`
}

// HWTask describes a hardware task.
type HWTask struct {
	Name     string   `json:"name"`
	Priority int      `json:"priority"`
	StartAt  Duration `json:"startAt"`
	Loop     bool     `json:"loop"`
	Repeat   int      `json:"repeat"`
	Body     []Op     `json:"body"`
}

// Op is one behaviour-script operation. Exactly one interpretation applies
// depending on Op:
//
//	execute {for}          consume processor time (software only)
//	execute_trace {trace}  consume the trace's next duration (wraps around)
//	delay {for}            sleep (software) / let time pass (hardware)
//	wait {event}           wait on an event relation
//	signal {event}         signal an event relation
//	put {queue, value}     send a message (blocking when full)
//	tryput {queue, value}  send without blocking (dropped when full)
//	raise {irq}            raise an interrupt line
//	send {channel, value}  transfer a message over a bus channel
//	recv {channel}         receive from a bus channel
//	submit {server, for, constraint?}  queue aperiodic work on a server;
//	                       the named constraint, if any, is stopped when
//	                       the job completes
//	get {queue}            receive a message (blocking when empty)
//	lock {shared}          lock a shared variable
//	unlock {shared}        unlock a shared variable
//	read {shared}          lock+read+unlock a shared variable
//	write {shared, value}  lock+write+unlock a shared variable
//	nopreempt_begin        enter a non-preemptible critical region (sw only)
//	nopreempt_end          leave it
//	setprio {value}        change the task's base priority (sw only)
//	yield                  release the processor voluntarily (sw only)
//	lat_start {constraint} start a latency-constraint occurrence
//	lat_stop {constraint}  stop the oldest occurrence
//	kick {watchdog}        pet a watchdog timer (software tasks and ISRs)
//	repeat {count, body}   run the nested body count times
type Op struct {
	Op         string   `json:"op"`
	For        Duration `json:"for"`
	Event      string   `json:"event"`
	Queue      string   `json:"queue"`
	Shared     string   `json:"shared"`
	Constraint string   `json:"constraint"`
	IRQ        string   `json:"irq"`
	Channel    string   `json:"channel"`
	Server     string   `json:"server"`
	Trace      string   `json:"trace"`
	Watchdog   string   `json:"watchdog"`
	Value      int      `json:"value"`
	Count      int      `json:"count"`
	Body       []Op     `json:"body"`
}

// Validate re-checks a description after programmatic edits (e.g. a CLI
// override of every task's body form).
func (s *System) Validate() error { return s.validate() }

// Parse decodes and validates a scenario description.
func Parse(data []byte) (*System, error) {
	var s System
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
