package scenario

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/comm"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Built is an elaborated scenario: the runnable system plus name-indexed
// handles to every model object, for inspection after the run.
type Built struct {
	Desc *System
	Sys  *rtos.System

	Processors  map[string]*rtos.Processor
	Events      map[string]*comm.Event
	Queues      map[string]*comm.Queue[int]
	Shared      map[string]*comm.Shared[int]
	Constraints map[string]*rtos.Constraint
	IRQs        map[string]*rtos.IRQ
	Buses       map[string]*bus.Bus
	Channels    map[string]*bus.Channel[int]
	Servers     map[string]*rtos.Server
	Tasks       map[string]*rtos.Task
	Watchdogs   map[string]*rtos.Watchdog

	// AutoLowered names the tasks (sorted) whose unset engine field was
	// auto-selected onto the continuation engine because their body lowered
	// cleanly via rtos.LowerBody; see System.AutoEngine.
	AutoLowered []string

	// traceCursors tracks each named duration trace's position; a trace has
	// one global cursor shared by all its execute_trace sites, advancing
	// deterministically with the simulation.
	traceCursors map[string]int

	// xsend/xrecv hold the cross-shard halves of channels cut by a shard
	// filter: xsend maps a channel whose senders are local (receivers
	// remote) to its split-phase publish function, xrecv maps a channel
	// whose receivers are local (senders remote) to the bare delivery
	// queue the parallel engine's injector feeds. Nil for full builds.
	xsend map[string]func(comm.Actor, int)
	xrecv map[string]*comm.Queue[int]
}

// CrossHooks connects a shard build to the parallel engine. The build calls
// Inbound once per inbound cross-shard channel during elaboration; the
// sender-side split-phase transfer calls FloorHold, then occupies the local
// bus for the usual transfer time, then Publish at the instant the message
// would have been deposited, then FloorRelease. The floor brackets let the
// engine bound its outbound promises by in-flight transfers.
type CrossHooks struct {
	// Publish hands a sent value to the engine; the message surfaces on the
	// receiving shard timestamped with the sending kernel's current time.
	Publish func(channel, sender string, value int)
	// FloorHold announces an in-flight send that will publish no earlier
	// than `earliest`; it returns a token for FloorRelease.
	FloorHold func(channel string, earliest sim.Time) int
	// FloorRelease retires a FloorHold token once its message is published.
	FloorRelease func(channel string, id int)
	// Inbound registers the local delivery queue of an inbound channel.
	Inbound func(channel string, q *comm.Queue[int])
}

// shardFilter restricts elaboration to one shard of a partition plan.
type shardFilter struct {
	procs, hardware                                                  map[string]bool
	events, queues, shared, constraints, servers, irqs, watchdogs, buses map[string]bool
	chanLocal, chanOut, chanIn                                       map[string]bool
	hooks                                                            *CrossHooks
}

// Build elaborates the description into a simulation-ready system.
func (s *System) Build() (*Built, error) { return s.build(nil) }

// BuildShard elaborates exactly one shard of a partition plan: the shard's
// processors, hardware tasks and the objects the plan assigns to it. Cross-
// shard channels elaborate as half-objects wired to the hooks. A plan with a
// single group builds the full system (hooks unused), which is what makes
// the partition-of-one configuration byte-identical to the sequential
// engine: it runs the very same elaboration.
func (s *System) BuildShard(plan *ShardPlan, shard int, hooks *CrossHooks) (*Built, error) {
	if len(plan.Groups) == 1 {
		return s.build(nil)
	}
	f := &shardFilter{
		procs:       map[string]bool{},
		hardware:    map[string]bool{},
		events:      map[string]bool{},
		queues:      map[string]bool{},
		shared:      map[string]bool{},
		constraints: map[string]bool{},
		servers:     map[string]bool{},
		irqs:        map[string]bool{},
		watchdogs:   map[string]bool{},
		buses:       map[string]bool{},
		chanLocal:   map[string]bool{},
		chanOut:     map[string]bool{},
		chanIn:      map[string]bool{},
		hooks:       hooks,
	}
	for _, name := range plan.Groups[shard].Processors {
		f.procs[name] = true
	}
	for _, name := range plan.Groups[shard].Hardware {
		f.hardware[name] = true
	}
	keep := func(dst map[string]bool, owners map[string]int) {
		for name, g := range owners {
			if g == shard {
				dst[name] = true
			}
		}
	}
	keep(f.events, plan.Events)
	keep(f.queues, plan.Queues)
	keep(f.shared, plan.Shared)
	keep(f.constraints, plan.Constraints)
	keep(f.servers, plan.Servers)
	keep(f.irqs, plan.IRQs)
	keep(f.watchdogs, plan.Watchdogs)
	keep(f.buses, plan.Buses)
	for name, route := range plan.Channels {
		switch {
		case route.From == shard && route.To == shard:
			f.chanLocal[name] = true
		case route.From == shard:
			f.chanOut[name] = true
		case route.To == shard:
			f.chanIn[name] = true
		}
	}
	return s.build(f)
}

func (s *System) build(f *shardFilter) (*Built, error) {
	b := &Built{
		Desc:         s,
		Sys:          rtos.NewSystem(),
		Processors:   map[string]*rtos.Processor{},
		Events:       map[string]*comm.Event{},
		Queues:       map[string]*comm.Queue[int]{},
		Shared:       map[string]*comm.Shared[int]{},
		Constraints:  map[string]*rtos.Constraint{},
		IRQs:         map[string]*rtos.IRQ{},
		Buses:        map[string]*bus.Bus{},
		Channels:     map[string]*bus.Channel[int]{},
		Servers:      map[string]*rtos.Server{},
		Tasks:        map[string]*rtos.Task{},
		Watchdogs:    map[string]*rtos.Watchdog{},
		traceCursors: map[string]int{},
	}
	if f != nil {
		b.xsend = map[string]func(comm.Actor, int){}
		b.xrecv = map[string]*comm.Queue[int]{}
	}
	// The timed-queue backend must be selected before elaboration: fault
	// injection and server replenishment schedule timers during Build.
	if s.TimedQueue == "heap" {
		b.Sys.K.SetTimedQueue(sim.TimedQueueHeap)
	}
	for _, p := range s.Processors {
		if f != nil && !f.procs[p.Name] {
			continue
		}
		cfg := rtos.Config{NonPreemptive: p.NonPreemptive, Speed: p.Speed, Cores: p.Cores}
		if p.Engine == "threaded" {
			cfg.Engine = rtos.EngineThreaded
		}
		if p.Domain == "global" {
			cfg.Domain = rtos.DomainGlobal
		}
		switch p.Policy {
		case "", "priority":
			cfg.Policy = rtos.PriorityPreemptive{}
		case "fifo":
			cfg.Policy = rtos.FIFO{}
		case "rr":
			cfg.Policy = rtos.RoundRobin{Slice: p.Quantum.Time()}
		case "edf":
			cfg.Policy = rtos.EDF{}
		}
		ov := rtos.Overheads{
			ContextSave: rtos.Fixed(p.Overheads.ContextSave.Time()),
			ContextLoad: rtos.Fixed(p.Overheads.ContextLoad.Time()),
		}
		if p.Overheads.SchedulingPerReady > 0 {
			ov.Scheduling = rtos.PerReadyTask(p.Overheads.Scheduling.Time(), p.Overheads.SchedulingPerReady.Time())
		} else {
			ov.Scheduling = rtos.Fixed(p.Overheads.Scheduling.Time())
		}
		cfg.Overheads = ov
		b.Processors[p.Name] = b.Sys.NewProcessor(p.Name, cfg)
	}
	for _, e := range s.Events {
		if f != nil && !f.events[e.Name] {
			continue
		}
		pol := comm.Fugitive
		switch e.Policy {
		case "boolean":
			pol = comm.Boolean
		case "counter":
			pol = comm.Counter
		}
		b.Events[e.Name] = comm.NewEvent(b.Sys.Rec, e.Name, pol)
	}
	for _, q := range s.Queues {
		if f != nil && !f.queues[q.Name] {
			continue
		}
		b.Queues[q.Name] = comm.NewQueue[int](b.Sys.Rec, q.Name, q.Capacity)
	}
	for _, v := range s.Shared {
		if f != nil && !f.shared[v.Name] {
			continue
		}
		if v.Inherit {
			b.Shared[v.Name] = comm.NewInheritShared(b.Sys.Rec, v.Name, v.Initial)
		} else {
			b.Shared[v.Name] = comm.NewShared(b.Sys.Rec, v.Name, v.Initial)
		}
	}
	for _, c := range s.Constraints {
		if f != nil && !f.constraints[c.Name] {
			continue
		}
		b.Constraints[c.Name] = b.Sys.Constraints.NewLatency(c.Name, c.Limit.Time())
	}

	for _, def := range s.Buses {
		if f != nil && !f.buses[def.Name] {
			continue
		}
		b.Buses[def.Name] = bus.New(b.Sys.Rec, def.Name, bus.Config{
			PerByte:     def.PerByte.Time(),
			Arbitration: def.Arbitration.Time(),
		})
	}
	for _, def := range s.Channels {
		size := def.MessageBytes
		if size == 0 {
			size = 1
		}
		switch {
		case f != nil && f.chanLocal[def.Name] && b.Buses[def.Bus] == nil:
			// A senderless channel routes to its receivers' shard while its
			// (never contended) bus elaborated elsewhere. A bare queue models
			// it exactly: receivers block, nothing ever sends.
			b.xrecv[def.Name] = comm.NewQueue[int](b.Sys.Rec, def.Name, def.Capacity)
		case f == nil || f.chanLocal[def.Name]:
			b.Channels[def.Name] = bus.NewChannel(b.Buses[def.Bus], def.Name, def.Capacity,
				func(int) int { return size })
		case f.chanOut[def.Name]:
			// Sender half of a cross-shard channel: the local bus charges its
			// usual contention and transfer time, then the value leaves the
			// shard as a timestamped message instead of entering a queue. The
			// floor bracket keeps the engine's outbound promise below the
			// publish instant while the transfer is in flight.
			name, theBus, hooks := def.Name, b.Buses[def.Bus], f.hooks
			b.xsend[name] = func(a comm.Actor, v int) {
				id := hooks.FloorHold(name, addTimeSat(b.Sys.Now(), theBus.TransferTime(size)))
				theBus.Transfer(a, size)
				hooks.Publish(name, a.Name(), v)
				hooks.FloorRelease(name, id)
			}
		case f.chanIn[def.Name]:
			// Receiver half: a bare delivery queue fed by the engine's
			// injector. Receivers block on it exactly as on a local channel.
			q := comm.NewQueue[int](b.Sys.Rec, def.Name, def.Capacity)
			b.xrecv[def.Name] = q
			f.hooks.Inbound(def.Name, q)
		}
	}
	for _, def := range s.Servers {
		if f != nil && !f.servers[def.Name] {
			continue
		}
		cfg := rtos.ServerConfig{
			Priority: def.Priority,
			Period:   def.Period.Time(),
			Budget:   def.Budget.Time(),
			QueueCap: def.QueueCap,
		}
		cpu := b.Processors[def.Processor]
		switch def.Kind {
		case "deferrable":
			b.Servers[def.Name] = cpu.NewDeferrableServer(def.Name, cfg)
		case "sporadic":
			b.Servers[def.Name] = cpu.NewSporadicServer(def.Name, cfg)
		default:
			b.Servers[def.Name] = cpu.NewPollingServer(def.Name, cfg)
		}
	}
	for _, q := range s.IRQs {
		if f != nil && !f.irqs[q.Name] {
			continue
		}
		q := q
		ctrl := b.Processors[q.Processor].Interrupts()
		b.IRQs[q.Name] = ctrl.NewIRQ(q.Name, q.Priority, q.Latency.Time(), func(c *rtos.ISRCtx) {
			b.runOps(isrActor(c), q.Body)
		})
	}

	for _, t := range s.Tasks {
		if f != nil && !f.procs[t.Processor] {
			continue
		}
		t := t
		cpu := b.Processors[t.Processor]
		cfg := rtos.TaskConfig{
			Priority: t.Priority,
			Affinity: t.Affinity,
			StartAt:  t.StartAt.Time(),
			Period:   t.Period.Time(),
			Deadline: t.Deadline.Time(),
			Jitter:   t.Jitter.Time(),
		}
		switch t.OnMiss {
		case "abort":
			cfg.OnMiss = rtos.MissAbortJob
		case "skip_next":
			cfg.OnMiss = rtos.MissSkipNextRelease
		case "restart":
			cfg.OnMiss = rtos.MissRestartTask
		}
		if t.Engine == "" && s.autoEngine() && !t.Loop && len(t.Body) > 0 && autoLowerable(t.Body) {
			// The engine is unset and the body is made only of purely
			// recordable ops, so probe it with the real lowering machinery:
			// run the goroutine closure against a recording TaskCtx and, when
			// it lowers cleanly, run the task on the continuation engine with
			// the recorded Program. The autoLowerable pre-check is what makes
			// the probe safe — recording interprets the body once at
			// elaboration time, so ops with effects outside the TaskCtx
			// (raise, signal, tryput, execute_trace) must never reach it.
			if prog, ok := b.lowerTask(t); ok {
				b.AutoLowered = append(b.AutoLowered, t.Name)
				if t.Period > 0 {
					b.Tasks[t.Name] = cpu.NewPeriodicContTask(t.Name, cfg, prog)
				} else {
					b.Tasks[t.Name] = cpu.NewContTask(t.Name, cfg, prog)
				}
				continue
			}
		}
		if t.Engine == "continuation" {
			pb := rtos.BuildProgram()
			if t.Period > 0 {
				b.compileOps(pb, t.Body)
				b.Tasks[t.Name] = cpu.NewPeriodicContTask(t.Name, cfg, pb.Build())
				continue
			}
			if t.Loop {
				pb.Loop(-1)
			} else {
				pb.Loop(max(1, t.Repeat))
			}
			b.compileOps(pb, t.Body)
			pb.End()
			b.Tasks[t.Name] = cpu.NewContTask(t.Name, cfg, pb.Build())
			continue
		}
		if t.Period > 0 {
			b.Tasks[t.Name] = cpu.NewPeriodicTask(t.Name, cfg, func(c *rtos.TaskCtx, cycle int) {
				b.runOps(swOps(c), t.Body)
			})
			continue
		}
		b.Tasks[t.Name] = cpu.NewTask(t.Name, cfg, func(c *rtos.TaskCtx) {
			ops := swOps(c)
			if t.Loop {
				for {
					b.runOps(ops, t.Body)
				}
			}
			for i := 0; i < max(1, t.Repeat); i++ {
				b.runOps(ops, t.Body)
			}
		})
	}
	sort.Strings(b.AutoLowered)
	for _, h := range s.Hardware {
		if f != nil && !f.hardware[h.Name] {
			continue
		}
		h := h
		b.Sys.NewHWTask(h.Name, rtos.HWConfig{Priority: h.Priority, StartAt: h.StartAt.Time()}, func(c *rtos.HWCtx) {
			ops := hwOps(c)
			if h.Loop {
				for {
					b.runOps(ops, h.Body)
				}
			}
			for i := 0; i < max(1, h.Repeat); i++ {
				b.runOps(ops, h.Body)
			}
		})
	}

	for _, w := range s.Watchdogs {
		if f != nil && !f.watchdogs[w.Name] {
			continue
		}
		b.Watchdogs[w.Name] = b.Processors[w.Processor].NewWatchdog(
			w.Name, w.Timeout.Time(), b.Tasks[w.Task]) // Task "" maps to nil
	}
	for _, fd := range s.Faults {
		// Faults follow their target: a shard build skips injections whose
		// task or IRQ lives elsewhere.
		switch fd.Kind {
		case "wcet_overrun", "crash", "hang":
			if f != nil && b.Tasks[fd.Task] == nil {
				continue
			}
		default:
			if f != nil && b.IRQs[fd.IRQ] == nil {
				continue
			}
		}
		switch fd.Kind {
		case "wcet_overrun":
			b.Tasks[fd.Task].InjectWCETOverrun(rtos.WCETOverrun{
				Factor:      fd.Factor,
				Extra:       fd.Extra.Time(),
				Probability: fd.Probability,
				Seed:        fd.Seed,
				After:       fd.After.Time(),
				Until:       fd.Until.Time(),
			})
		case "crash":
			b.Tasks[fd.Task].InjectCrashAt(fd.At.Time())
		case "hang":
			b.Tasks[fd.Task].InjectHangAt(fd.At.Time(), fd.For.Time())
		case "irq_drop":
			b.IRQs[fd.IRQ].InjectDrop(fd.Probability, fd.Seed)
		case "irq_latency":
			b.IRQs[fd.IRQ].InjectLatencySpike(fd.Extra.Time(), fd.Probability, fd.Seed)
		}
	}
	return b, nil
}

// addTimeSat adds two times, saturating at sim.TimeMax.
func addTimeSat(a, b sim.Time) sim.Time {
	if c := a + b; c >= a {
		return c
	}
	return sim.TimeMax
}

// Run simulates the built scenario to its horizon (or to event starvation)
// and shuts the kernel down.
func (b *Built) Run() {
	if h := b.Desc.Horizon.Time(); h > 0 {
		b.Sys.RunUntil(h)
		b.Sys.Shutdown()
		return
	}
	b.Sys.Run()
}

// RunChecked simulates the built scenario to its horizon (or to event
// starvation) with failure diagnosis: model panics, deadlock and starvation
// come back as a structured *sim.SimError instead of a panic or a silent
// stop. On a clean finish the kernel is shut down and the report returned.
func (b *Built) RunChecked() (sim.Report, error) {
	limit := sim.TimeMax
	if h := b.Desc.Horizon.Time(); h > 0 {
		limit = h
	}
	rep, err := b.Sys.RunChecked(limit)
	if err == nil {
		b.Sys.Shutdown()
	}
	return rep, err
}

// opActor abstracts the software/hardware task APIs for the interpreter.
type opActor struct {
	actor     comm.Actor
	execute   func(sim.Time)
	delay     func(sim.Time)
	noPreempt func(bool)
	setPrio   func(int)
	yield     func()
}

func swOps(c *rtos.TaskCtx) opActor {
	return opActor{
		actor:   c,
		execute: c.Execute,
		delay:   c.Delay,
		noPreempt: func(on bool) {
			if on {
				c.DisablePreemption()
			} else {
				c.EnablePreemption()
			}
		},
		setPrio: c.SetPriority,
		yield:   c.Yield,
	}
}

func hwOps(c *rtos.HWCtx) opActor {
	return opActor{actor: c, delay: c.Wait}
}

func isrActor(c *rtos.ISRCtx) opActor {
	return opActor{actor: c, execute: c.Execute}
}

// runOps interprets a behaviour script. Validation guarantees the ops are
// well-formed for the actor kind.
func (b *Built) runOps(a opActor, ops []Op) {
	for _, op := range ops {
		switch op.Op {
		case "execute":
			a.execute(op.For.Time())
		case "execute_trace":
			tr := b.Desc.Traces[op.Trace]
			i := b.traceCursors[op.Trace]
			b.traceCursors[op.Trace] = (i + 1) % len(tr)
			a.execute(tr[i].Time())
		case "delay":
			a.delay(op.For.Time())
		case "wait":
			b.Events[op.Event].Wait(a.actor)
		case "signal":
			b.Events[op.Event].Signal(a.actor)
		case "put":
			b.Queues[op.Queue].Put(a.actor, op.Value)
		case "tryput":
			b.Queues[op.Queue].TryPut(a.actor, op.Value)
		case "get":
			b.Queues[op.Queue].Get(a.actor)
		case "raise":
			b.IRQs[op.IRQ].Raise()
		case "send":
			if ch := b.Channels[op.Channel]; ch != nil {
				ch.Send(a.actor, op.Value)
			} else {
				// Sender half of a cross-shard channel (see BuildShard).
				b.xsend[op.Channel](a.actor, op.Value)
			}
		case "recv":
			if ch := b.Channels[op.Channel]; ch != nil {
				ch.Recv(a.actor)
			} else {
				// Receiver half: block on the injector-fed delivery queue.
				b.xrecv[op.Channel].Get(a.actor)
			}
		case "submit":
			job := rtos.AperiodicJob{Work: op.For.Time()}
			if op.Constraint != "" {
				mon := b.Constraints[op.Constraint]
				job.Done = mon.Stop
			}
			b.Servers[op.Server].Submit(job)
		case "lock":
			b.Shared[op.Shared].Lock(a.actor)
		case "unlock":
			b.Shared[op.Shared].Unlock(a.actor)
		case "read":
			b.Shared[op.Shared].Read(a.actor)
		case "write":
			b.Shared[op.Shared].Write(a.actor, op.Value)
		case "nopreempt_begin":
			a.noPreempt(true)
		case "nopreempt_end":
			a.noPreempt(false)
		case "setprio":
			a.setPrio(op.Value)
		case "yield":
			a.yield()
		case "lat_start":
			b.Constraints[op.Constraint].Start()
		case "lat_stop":
			b.Constraints[op.Constraint].Stop()
		case "kick":
			b.Watchdogs[op.Watchdog].Kick()
		case "repeat":
			for i := 0; i < op.Count; i++ {
				b.runOps(a, op.Body)
			}
		default:
			panic(fmt.Sprintf("scenario: unvalidated op %q", op.Op))
		}
	}
}

// autoEngine reports whether automatic task-engine selection is enabled for
// the scenario: on unless the description says "autoEngine": false.
func (s *System) autoEngine() bool {
	return s.AutoEngine == nil || *s.AutoEngine
}

// autoLowerable reports whether every op in the body belongs to the purely
// recordable subset of the behaviour language: ops that map one-to-one onto
// the TaskCtx calls rtos.LowerBody records (execute, delay, yield, the
// preemption toggles, setprio) plus bounded repeat over the same subset.
// Anything else — comm relations, IRQ raises, traces, watchdog kicks — either
// has effects outside the TaskCtx or depends on simulation state, so it must
// never run against a recording context.
func autoLowerable(ops []Op) bool {
	for _, op := range ops {
		switch op.Op {
		case "execute", "delay", "yield", "nopreempt_begin", "nopreempt_end", "setprio":
		case "repeat":
			if !autoLowerable(op.Body) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lowerTask probes one auto-lowerable task body with the rtos lowering
// machinery and returns the recorded Program. Lowering can still fail here —
// a deeply nested repeat can overflow the recording bound — in which case the
// task keeps the goroutine engine.
func (b *Built) lowerTask(t SWTask) (*rtos.Program, bool) {
	if t.Period > 0 {
		return rtos.LowerPeriodicBody(func(c *rtos.TaskCtx, cycle int) {
			b.runOps(swOps(c), t.Body)
		})
	}
	return rtos.LowerBody(func(c *rtos.TaskCtx) {
		for i := 0; i < max(1, t.Repeat); i++ {
			b.runOps(swOps(c), t.Body)
		}
	})
}

// compileOps translates a behaviour script into continuation program ops,
// mirroring runOps one for one: blocking ops become yield ops, non-blocking
// ops become inline steps, repeat becomes a counted loop. Validation
// guarantees the ops are continuation-expressible (no send/recv).
func (b *Built) compileOps(pb *rtos.ProgramBuilder, ops []Op) {
	for _, op := range ops {
		op := op
		switch op.Op {
		case "execute":
			pb.Compute(op.For.Time())
		case "execute_trace":
			pb.ComputeFn(func(c *rtos.TaskCtx) sim.Time {
				tr := b.Desc.Traces[op.Trace]
				i := b.traceCursors[op.Trace]
				b.traceCursors[op.Trace] = (i + 1) % len(tr)
				return tr[i].Time()
			})
		case "delay":
			pb.WaitFor(op.For.Time())
		case "wait":
			pb.WaitOn(b.Events[op.Event])
		case "signal":
			pb.Signal(b.Events[op.Event])
		case "put":
			pb.Op(rtos.PutMsg(b.Queues[op.Queue], op.Value))
		case "tryput":
			pb.Do(func(c *rtos.TaskCtx) { b.Queues[op.Queue].TryPut(c, op.Value) })
		case "get":
			pb.Op(rtos.GetMsg(b.Queues[op.Queue], nil))
		case "raise":
			pb.Do(func(c *rtos.TaskCtx) { b.IRQs[op.IRQ].Raise() })
		case "submit":
			pb.Do(func(c *rtos.TaskCtx) {
				job := rtos.AperiodicJob{Work: op.For.Time()}
				if op.Constraint != "" {
					mon := b.Constraints[op.Constraint]
					job.Done = mon.Stop
				}
				b.Servers[op.Server].Submit(job)
			})
		case "lock":
			pb.Lock(b.Shared[op.Shared].Mutex())
		case "unlock":
			pb.Do(func(c *rtos.TaskCtx) { b.Shared[op.Shared].Unlock(c) })
		case "read":
			// Shared.Read is lock + get + unlock; only the lock can block.
			pb.Lock(b.Shared[op.Shared].Mutex())
			pb.Do(func(c *rtos.TaskCtx) {
				sv := b.Shared[op.Shared]
				sv.Get(c)
				sv.Unlock(c)
			})
		case "write":
			pb.Lock(b.Shared[op.Shared].Mutex())
			pb.Do(func(c *rtos.TaskCtx) {
				sv := b.Shared[op.Shared]
				sv.Set(c, op.Value)
				sv.Unlock(c)
			})
		case "nopreempt_begin":
			pb.Do(func(c *rtos.TaskCtx) { c.DisablePreemption() })
		case "nopreempt_end":
			pb.Do(func(c *rtos.TaskCtx) { c.EnablePreemption() })
		case "setprio":
			pb.Do(func(c *rtos.TaskCtx) { c.SetPriority(op.Value) })
		case "yield":
			pb.Yield()
		case "lat_start":
			pb.Do(func(c *rtos.TaskCtx) { b.Constraints[op.Constraint].Start() })
		case "lat_stop":
			pb.Do(func(c *rtos.TaskCtx) { b.Constraints[op.Constraint].Stop() })
		case "kick":
			pb.Do(func(c *rtos.TaskCtx) { b.Watchdogs[op.Watchdog].Kick() })
		case "repeat":
			pb.Loop(op.Count)
			b.compileOps(pb, op.Body)
			pb.End()
		default:
			panic(fmt.Sprintf("scenario: op %q is not continuation-expressible", op.Op))
		}
	}
}
