package scenario

import "fmt"

// validate checks cross-references and enum values before elaboration so
// description errors surface as errors, not mid-simulation panics.
func (s *System) validate() error {
	switch s.TimedQueue {
	case "", "wheel", "heap":
	default:
		return fmt.Errorf("scenario: timedQueue must be \"wheel\" or \"heap\", not %q", s.TimedQueue)
	}
	cpus := map[string]bool{}
	cpuDefs := map[string]Processor{}
	for _, p := range s.Processors {
		if p.Name == "" {
			return fmt.Errorf("scenario: processor with empty name")
		}
		if cpus[p.Name] {
			return fmt.Errorf("scenario: duplicate processor %q", p.Name)
		}
		cpus[p.Name] = true
		cpuDefs[p.Name] = p
		switch p.Engine {
		case "", "procedural", "threaded":
		default:
			return fmt.Errorf("scenario: processor %q: unknown engine %q", p.Name, p.Engine)
		}
		if p.Speed < 0 {
			return fmt.Errorf("scenario: processor %q: speed must be positive", p.Name)
		}
		if p.Cores < 0 {
			return fmt.Errorf("scenario: processor %q: cores must be positive", p.Name)
		}
		switch p.Domain {
		case "", "partitioned", "global":
		default:
			return fmt.Errorf("scenario: processor %q: domain must be \"partitioned\" or \"global\"", p.Name)
		}
		switch p.Policy {
		case "", "priority", "fifo", "edf":
		case "rr":
			if p.Quantum <= 0 {
				return fmt.Errorf("scenario: processor %q: rr policy needs a positive quantum", p.Name)
			}
		default:
			return fmt.Errorf("scenario: processor %q: unknown policy %q", p.Name, p.Policy)
		}
	}

	events := map[string]bool{}
	for _, e := range s.Events {
		if events[e.Name] {
			return fmt.Errorf("scenario: duplicate event %q", e.Name)
		}
		events[e.Name] = true
		switch e.Policy {
		case "", "fugitive", "boolean", "counter":
		default:
			return fmt.Errorf("scenario: event %q: unknown policy %q", e.Name, e.Policy)
		}
	}
	queues := map[string]bool{}
	for _, q := range s.Queues {
		if queues[q.Name] {
			return fmt.Errorf("scenario: duplicate queue %q", q.Name)
		}
		queues[q.Name] = true
		if q.Capacity < 1 {
			return fmt.Errorf("scenario: queue %q: capacity must be at least 1", q.Name)
		}
	}
	shared := map[string]bool{}
	for _, v := range s.Shared {
		if shared[v.Name] {
			return fmt.Errorf("scenario: duplicate shared variable %q", v.Name)
		}
		shared[v.Name] = true
	}
	constraints := map[string]bool{}
	for _, c := range s.Constraints {
		if constraints[c.Name] {
			return fmt.Errorf("scenario: duplicate constraint %q", c.Name)
		}
		constraints[c.Name] = true
		if c.Limit <= 0 {
			return fmt.Errorf("scenario: constraint %q: limit must be positive", c.Name)
		}
	}

	buses := map[string]bool{}
	for _, b := range s.Buses {
		if buses[b.Name] {
			return fmt.Errorf("scenario: duplicate bus %q", b.Name)
		}
		buses[b.Name] = true
	}
	channels := map[string]bool{}
	for _, c := range s.Channels {
		if channels[c.Name] || queues[c.Name] {
			return fmt.Errorf("scenario: duplicate channel %q", c.Name)
		}
		channels[c.Name] = true
		if !buses[c.Bus] {
			return fmt.Errorf("scenario: channel %q: unknown bus %q", c.Name, c.Bus)
		}
		if c.Capacity < 1 {
			return fmt.Errorf("scenario: channel %q: capacity must be at least 1", c.Name)
		}
		if c.MessageBytes < 0 {
			return fmt.Errorf("scenario: channel %q: negative message size", c.Name)
		}
	}
	servers := map[string]bool{}
	traces := map[string]bool{}
	for name, tr := range s.Traces {
		if len(tr) == 0 {
			return fmt.Errorf("scenario: trace %q is empty", name)
		}
		for i, d := range tr {
			if d <= 0 {
				return fmt.Errorf("scenario: trace %q entry %d must be positive", name, i)
			}
		}
		traces[name] = true
	}
	irqs := map[string]bool{}
	// Watchdog names are collected up front so task and ISR bodies can kick
	// them; the rest of each definition is checked after the tasks are known.
	watchdogs := map[string]bool{}
	for _, w := range s.Watchdogs {
		if w.Name == "" {
			return fmt.Errorf("scenario: watchdog with empty name")
		}
		if watchdogs[w.Name] {
			return fmt.Errorf("scenario: duplicate watchdog %q", w.Name)
		}
		watchdogs[w.Name] = true
	}
	refs := refSets{
		events: events, queues: queues, shared: shared,
		constraints: constraints, irqs: irqs, channels: channels, servers: servers,
		traces: traces, watchdogs: watchdogs,
	}
	for _, srv := range s.Servers {
		if servers[srv.Name] {
			return fmt.Errorf("scenario: duplicate server %q", srv.Name)
		}
		servers[srv.Name] = true
		if !cpus[srv.Processor] {
			return fmt.Errorf("scenario: server %q: unknown processor %q", srv.Name, srv.Processor)
		}
		switch srv.Kind {
		case "polling", "deferrable", "sporadic":
		default:
			return fmt.Errorf("scenario: server %q: kind must be polling, deferrable or sporadic", srv.Name)
		}
		if srv.Period <= 0 || srv.Budget <= 0 || srv.Budget > srv.Period {
			return fmt.Errorf("scenario: server %q: budget must be in (0, period]", srv.Name)
		}
	}
	for _, q := range s.IRQs {
		if irqs[q.Name] {
			return fmt.Errorf("scenario: duplicate irq %q", q.Name)
		}
		irqs[q.Name] = true
		if !cpus[q.Processor] {
			return fmt.Errorf("scenario: irq %q: unknown processor %q", q.Name, q.Processor)
		}
		if len(q.Body) == 0 {
			return fmt.Errorf("scenario: irq %q has an empty body", q.Name)
		}
		if err := validateOps("irq:"+q.Name, q.Body, isrOps, refs); err != nil {
			return err
		}
	}

	names := map[string]bool{}
	taskCPU := map[string]string{}
	for _, t := range s.Tasks {
		if names[t.Name] {
			return fmt.Errorf("scenario: duplicate task %q", t.Name)
		}
		names[t.Name] = true
		if !cpus[t.Processor] {
			return fmt.Errorf("scenario: task %q: unknown processor %q", t.Name, t.Processor)
		}
		taskCPU[t.Name] = t.Processor
		if t.Affinity != 0 {
			cpu := cpuDefs[t.Processor]
			if t.Affinity < 0 || t.Affinity >= max(1, cpu.Cores) {
				return fmt.Errorf("scenario: task %q: affinity %d out of range for processor %q with %d core(s)",
					t.Name, t.Affinity, t.Processor, max(1, cpu.Cores))
			}
			if cpu.Domain == "global" {
				return fmt.Errorf("scenario: task %q: affinity requires the partitioned domain on processor %q",
					t.Name, t.Processor)
			}
		}
		if t.Loop && t.Period > 0 {
			return fmt.Errorf("scenario: task %q: loop and period are mutually exclusive", t.Name)
		}
		if t.Jitter > 0 && (t.Period == 0 || t.Jitter >= t.Period) {
			return fmt.Errorf("scenario: task %q: jitter requires a period larger than the jitter", t.Name)
		}
		switch t.OnMiss {
		case "", "continue":
		case "abort", "skip_next", "restart":
			if t.Period == 0 {
				return fmt.Errorf("scenario: task %q: onMiss %q requires a period", t.Name, t.OnMiss)
			}
		default:
			return fmt.Errorf("scenario: task %q: unknown onMiss policy %q", t.Name, t.OnMiss)
		}
		if len(t.Body) == 0 {
			return fmt.Errorf("scenario: task %q has an empty body", t.Name)
		}
		switch t.Engine {
		case "", "goroutine":
		case "continuation":
			if err := validateContOps(t.Name, t.Body); err != nil {
				return err
			}
		default:
			return fmt.Errorf("scenario: task %q: unknown engine %q (want \"goroutine\" or \"continuation\")",
				t.Name, t.Engine)
		}
		if err := validateOps(t.Name, t.Body, swOpsKind, refs); err != nil {
			return err
		}
	}
	for _, h := range s.Hardware {
		if names[h.Name] {
			return fmt.Errorf("scenario: duplicate task %q", h.Name)
		}
		names[h.Name] = true
		if len(h.Body) == 0 {
			return fmt.Errorf("scenario: hardware task %q has an empty body", h.Name)
		}
		if err := validateOps(h.Name, h.Body, hwOpsKind, refs); err != nil {
			return err
		}
	}
	if len(s.Tasks) == 0 && len(s.Hardware) == 0 {
		return fmt.Errorf("scenario: no tasks")
	}

	for _, w := range s.Watchdogs {
		if !cpus[w.Processor] {
			return fmt.Errorf("scenario: watchdog %q: unknown processor %q", w.Name, w.Processor)
		}
		if w.Timeout <= 0 {
			return fmt.Errorf("scenario: watchdog %q: timeout must be positive", w.Name)
		}
		if w.Task != "" {
			cpu, ok := taskCPU[w.Task]
			if !ok {
				return fmt.Errorf("scenario: watchdog %q: unknown task %q", w.Name, w.Task)
			}
			if cpu != w.Processor {
				return fmt.Errorf("scenario: watchdog %q: task %q runs on processor %q, not %q",
					w.Name, w.Task, cpu, w.Processor)
			}
		}
	}
	if err := s.validateFaults(taskCPU, irqs); err != nil {
		return err
	}
	if err := s.validateExplore(); err != nil {
		return err
	}
	return nil
}

// validateExplore checks the schedule-exploration block: bounds must be
// non-negative and the perturbed tasks must be periodic with jitter room.
func (s *System) validateExplore() error {
	e := s.Explore
	if e == nil {
		return nil
	}
	if e.MaxRuns < 0 || e.MaxDepth < 0 || e.JitterSteps < 0 || e.MaxBranch < 0 {
		return fmt.Errorf("scenario: explore: bounds must be non-negative")
	}
	if e.MaxInversion < 0 {
		return fmt.Errorf("scenario: explore: negative maxInversion")
	}
	taskDef := map[string]SWTask{}
	for _, t := range s.Tasks {
		taskDef[t.Name] = t
	}
	for name, bound := range e.Jitter {
		t, ok := taskDef[name]
		if !ok {
			return fmt.Errorf("scenario: explore: jitter for unknown task %q", name)
		}
		if bound <= 0 {
			return fmt.Errorf("scenario: explore: task %q: jitter bound must be positive", name)
		}
		if t.Period == 0 || bound >= t.Period {
			return fmt.Errorf("scenario: explore: task %q: jitter bound requires a period larger than the bound", name)
		}
	}
	for _, name := range e.ExpectedMiss {
		if _, ok := taskDef[name]; !ok {
			return fmt.Errorf("scenario: explore: expectedMiss names unknown task %q", name)
		}
	}
	return nil
}

// validateFaults mirrors the preconditions of the rtos fault injectors so a
// bad description is an error, not an elaboration panic.
func (s *System) validateFaults(taskCPU map[string]string, irqs map[string]bool) error {
	for i, f := range s.Faults {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("scenario: fault %d (%s): %s", i, f.Kind, fmt.Sprintf(format, args...))
		}
		needTask := func() error {
			if taskCPU[f.Task] == "" {
				return fail("unknown task %q", f.Task)
			}
			return nil
		}
		if f.Probability < 0 || f.Probability > 1 {
			return fail("probability out of [0, 1]")
		}
		switch f.Kind {
		case "wcet_overrun":
			if err := needTask(); err != nil {
				return err
			}
			if f.Factor != 0 && f.Factor < 1 {
				return fail("factor must be at least 1")
			}
			if f.Extra < 0 {
				return fail("negative extra")
			}
			if (f.Factor == 0 || f.Factor == 1) && f.Extra == 0 {
				return fail("no effect: needs factor > 1 and/or a positive extra")
			}
			if f.After < 0 || f.Until < 0 || (f.Until > 0 && f.Until <= f.After) {
				return fail("active window [after, until) is empty")
			}
		case "crash":
			if err := needTask(); err != nil {
				return err
			}
			if f.At < 0 {
				return fail("negative injection time")
			}
		case "hang":
			if err := needTask(); err != nil {
				return err
			}
			if f.At < 0 || f.For < 0 {
				return fail("negative time")
			}
		case "irq_drop":
			if !irqs[f.IRQ] {
				return fail("unknown irq %q", f.IRQ)
			}
		case "irq_latency":
			if !irqs[f.IRQ] {
				return fail("unknown irq %q", f.IRQ)
			}
			if f.Extra <= 0 {
				return fail("needs a positive extra latency")
			}
		default:
			return fail("unknown fault kind")
		}
	}
	return nil
}

// validateContOps rejects the ops a continuation-bodied task cannot express:
// bus channel transfers block in multiple stages (arbitration, then the
// receiver queue) and have no split-phase yield form.
func validateContOps(task string, ops []Op) error {
	for i, op := range ops {
		switch op.Op {
		case "send", "recv":
			return fmt.Errorf("scenario: task %q op %d (%s): bus channel ops need a goroutine body; drop engine \"continuation\"",
				task, i, op.Op)
		case "repeat":
			if err := validateContOps(task, op.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

type refSets struct {
	events, queues, shared, constraints, irqs, channels, servers, traces, watchdogs map[string]bool
}

// opsKind selects the operation whitelist for a body.
type opsKind uint8

const (
	swOpsKind opsKind = iota // software tasks: everything
	hwOpsKind                // hardware tasks: no execute, no RTOS calls
	isrOps                   // interrupt service routines: non-blocking only
)

func validateOps(task string, ops []Op, kind opsKind, refs refSets) error {
	for i, op := range ops {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("scenario: task %q op %d (%s): %s", task, i, op.Op, fmt.Sprintf(format, args...))
		}
		switch op.Op {
		case "execute":
			if kind == hwOpsKind {
				return fail("hardware tasks use delay, not execute")
			}
			if op.For <= 0 {
				return fail("needs a positive 'for' duration")
			}
		case "execute_trace":
			if kind == hwOpsKind {
				return fail("hardware tasks use delay, not execute_trace")
			}
			if !refs.traces[op.Trace] {
				return fail("unknown trace %q", op.Trace)
			}
		case "delay":
			if kind == isrOps {
				return fail("ISRs consume time with execute, not delay")
			}
			if op.For <= 0 {
				return fail("needs a positive 'for' duration")
			}
		case "wait":
			if kind == isrOps {
				return fail("ISRs must not block")
			}
			if !refs.events[op.Event] {
				return fail("unknown event %q", op.Event)
			}
		case "signal":
			if !refs.events[op.Event] {
				return fail("unknown event %q", op.Event)
			}
		case "put", "get":
			if kind == isrOps {
				return fail("ISRs must not block; use tryput")
			}
			if !refs.queues[op.Queue] {
				return fail("unknown queue %q", op.Queue)
			}
		case "tryput":
			if !refs.queues[op.Queue] {
				return fail("unknown queue %q", op.Queue)
			}
		case "lock", "unlock", "read", "write":
			if kind == isrOps {
				return fail("ISRs must not block on shared variables")
			}
			if !refs.shared[op.Shared] {
				return fail("unknown shared variable %q", op.Shared)
			}
		case "nopreempt_begin", "nopreempt_end", "setprio", "yield":
			if kind != swOpsKind {
				return fail("only available on software tasks")
			}
		case "lat_start", "lat_stop":
			if !refs.constraints[op.Constraint] {
				return fail("unknown constraint %q", op.Constraint)
			}
		case "kick":
			if kind == hwOpsKind {
				return fail("watchdogs are kicked from software tasks or ISRs")
			}
			if !refs.watchdogs[op.Watchdog] {
				return fail("unknown watchdog %q", op.Watchdog)
			}
		case "raise":
			if kind == isrOps {
				return fail("ISRs cannot raise interrupts in this model")
			}
			if !refs.irqs[op.IRQ] {
				return fail("unknown irq %q", op.IRQ)
			}
		case "send", "recv":
			if kind == isrOps {
				return fail("ISRs must not block on bus channels")
			}
			if !refs.channels[op.Channel] {
				return fail("unknown channel %q", op.Channel)
			}
		case "submit":
			if !refs.servers[op.Server] {
				return fail("unknown server %q", op.Server)
			}
			if op.For <= 0 {
				return fail("needs a positive 'for' work duration")
			}
			if op.Constraint != "" && !refs.constraints[op.Constraint] {
				return fail("unknown constraint %q", op.Constraint)
			}
		case "repeat":
			if op.Count < 1 {
				return fail("needs a count of at least 1")
			}
			if len(op.Body) == 0 {
				return fail("needs a non-empty body")
			}
			if err := validateOps(task, op.Body, kind, refs); err != nil {
				return err
			}
		default:
			return fail("unknown operation")
		}
	}
	return nil
}
