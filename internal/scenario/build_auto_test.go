package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// runForDiff parses, optionally opts out of auto-engine, builds, runs, and
// returns the built system plus its full CSV trace and statistics report —
// the observables the differential tests compare across engines.
func runForDiff(t *testing.T, data []byte, auto bool) (*Built, string, string) {
	t.Helper()
	desc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !auto {
		f := false
		desc.AutoEngine = &f
	}
	built, err := desc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.RunChecked(); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := built.Sys.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return built, csv.String(), built.Sys.Stats(0).String()
}

// The auto-selected continuation engine must be an implementation detail: for
// a scenario whose tasks auto-lower, the trace and statistics are
// byte-identical to the same scenario forced onto the goroutine engine.
func TestAutoEngineDifferentialGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "periodic_rm.json"))
	if err != nil {
		t.Fatal(err)
	}
	autoBuilt, autoCSV, autoStats := runForDiff(t, data, true)
	goBuilt, goCSV, goStats := runForDiff(t, data, false)

	want := []string{"audio", "control", "logger", "video"}
	if !reflect.DeepEqual(autoBuilt.AutoLowered, want) {
		t.Errorf("AutoLowered = %v, want %v", autoBuilt.AutoLowered, want)
	}
	if len(goBuilt.AutoLowered) != 0 {
		t.Errorf("opted-out build still auto-lowered %v", goBuilt.AutoLowered)
	}
	if autoCSV != goCSV {
		t.Errorf("CSV traces differ between auto-continuation and goroutine engines\nauto:\n%s\ngoroutine:\n%s", autoCSV, goCSV)
	}
	if autoStats != goStats {
		t.Errorf("statistics differ between auto-continuation and goroutine engines\nauto:\n%s\ngoroutine:\n%s", autoStats, goStats)
	}
}

func TestAutoEngineSkipsUnlowerableBodies(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"comm op", `{
			"horizon": "1ms",
			"processors": [{"name": "cpu0"}],
			"events": [{"name": "go"}],
			"tasks": [
				{"name": "a", "processor": "cpu0", "priority": 2, "period": "100us",
				 "body": [{"op": "execute", "for": "10us"}, {"op": "signal", "event": "go"}]}
			]
		}`},
		{"loop body", `{
			"horizon": "1ms",
			"processors": [{"name": "cpu0"}],
			"tasks": [
				{"name": "a", "processor": "cpu0", "priority": 2, "loop": true,
				 "body": [{"op": "execute", "for": "10us"}, {"op": "delay", "for": "90us"}]}
			]
		}`},
		{"explicit goroutine", `{
			"horizon": "1ms",
			"processors": [{"name": "cpu0"}],
			"tasks": [
				{"name": "a", "processor": "cpu0", "priority": 2, "period": "100us",
				 "engine": "goroutine", "body": [{"op": "execute", "for": "10us"}]}
			]
		}`},
		{"trace body", `{
			"horizon": "1ms",
			"processors": [{"name": "cpu0"}],
			"traces": {"load": ["10us", "20us"]},
			"tasks": [
				{"name": "a", "processor": "cpu0", "priority": 2, "period": "100us",
				 "body": [{"op": "execute_trace", "trace": "load"}]}
			]
		}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			built, _, _ := runForDiff(t, []byte(tc.json), true)
			if len(built.AutoLowered) != 0 {
				t.Errorf("auto-lowered %v, want none", built.AutoLowered)
			}
		})
	}
}

func TestAutoEngineLowersMixedScenario(t *testing.T) {
	// One lowerable periodic task, one one-shot with repeat, one blocked on
	// an event (not lowerable): exactly the first two are auto-selected, and
	// the trace matches the goroutine run.
	src := `{
		"horizon": "1ms",
		"processors": [{"name": "cpu0"}],
		"events": [{"name": "go"}],
		"tasks": [
			{"name": "beat", "processor": "cpu0", "priority": 4, "period": "200us",
			 "body": [
				{"op": "nopreempt_begin"},
				{"op": "execute", "for": "20us"},
				{"op": "nopreempt_end"},
				{"op": "yield"},
				{"op": "repeat", "count": 2, "body": [{"op": "execute", "for": "5us"}]}
			 ]},
			{"name": "once", "processor": "cpu0", "priority": 3, "repeat": 3,
			 "body": [{"op": "execute", "for": "10us"}, {"op": "delay", "for": "30us"}]},
			{"name": "waiter", "processor": "cpu0", "priority": 2,
			 "body": [{"op": "wait", "event": "go"}]}
		]
	}`
	autoBuilt, autoCSV, _ := runForDiff(t, []byte(src), true)
	_, goCSV, _ := runForDiff(t, []byte(src), false)
	want := []string{"beat", "once"}
	if !reflect.DeepEqual(autoBuilt.AutoLowered, want) {
		t.Errorf("AutoLowered = %v, want %v", autoBuilt.AutoLowered, want)
	}
	if autoCSV != goCSV {
		t.Errorf("CSV traces differ between auto-continuation and goroutine engines\nauto:\n%s\ngoroutine:\n%s", autoCSV, goCSV)
	}
}

func TestAutoLowerablePredicate(t *testing.T) {
	ok := []Op{
		{Op: "execute"}, {Op: "delay"}, {Op: "yield"},
		{Op: "nopreempt_begin"}, {Op: "nopreempt_end"}, {Op: "setprio"},
		{Op: "repeat", Body: []Op{{Op: "execute"}}},
	}
	if !autoLowerable(ok) {
		t.Error("recordable op list rejected")
	}
	for _, bad := range []string{"wait", "signal", "put", "tryput", "get", "raise",
		"send", "recv", "submit", "lock", "unlock", "read", "write",
		"lat_start", "lat_stop", "kick", "execute_trace"} {
		if autoLowerable([]Op{{Op: "execute"}, {Op: bad}}) {
			t.Errorf("op %q accepted as auto-lowerable", bad)
		}
		if autoLowerable([]Op{{Op: "repeat", Body: []Op{{Op: bad}}}}) {
			t.Errorf("op %q inside repeat accepted as auto-lowerable", bad)
		}
	}
}
