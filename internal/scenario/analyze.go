package scenario

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// WCET statically computes a task body's processor demand: the sum of its
// execute durations, with repeat blocks multiplied out. Blocking operations
// contribute no processor time. This is the WCET a periodic task's analysis
// uses, assuming the annotated durations are worst-case.
func WCET(ops []Op) sim.Time {
	var total sim.Time
	for _, op := range ops {
		switch op.Op {
		case "execute":
			total += op.For.Time()
		case "repeat":
			total += sim.Time(op.Count) * WCET(op.Body)
		}
	}
	return total
}

// AnalyzeProcessor extracts the periodic tasks bound to the named processor
// as analysis task specs (WCET from the body, period, deadline, jitter) with
// exactly the priorities the simulation will use — equal priorities analyse
// pessimistically, matching the FIFO tie-breaking of the scheduler. It
// errors when the processor has no periodic tasks. Apply analysis.AssignRM
// to the result to evaluate a rate-monotonic re-prioritization.
func (s *System) AnalyzeProcessor(cpu string) ([]analysis.TaskSpec, error) {
	var specs []analysis.TaskSpec
	for _, t := range s.Tasks {
		if t.Processor != cpu || t.Period <= 0 {
			continue
		}
		wcet := WCET(t.Body)
		if wcet <= 0 {
			return nil, fmt.Errorf("scenario: periodic task %q has no execute time to analyse", t.Name)
		}
		specs = append(specs, analysis.TaskSpec{
			Name:     t.Name,
			Period:   t.Period.Time(),
			Deadline: t.Deadline.Time(),
			WCET:     wcet,
			Jitter:   t.Jitter.Time(),
			Priority: t.Priority,
		})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: processor %q has no periodic tasks to analyse", cpu)
	}
	return specs, nil
}

// AnalysisReport renders schedulability reports for every processor that
// carries periodic tasks; processors without any are skipped. The switch
// overhead is taken as the sum of the processor's fixed context-save,
// scheduling and context-load durations.
func (s *System) AnalysisReport() string {
	out := ""
	for _, p := range s.Processors {
		specs, err := s.AnalyzeProcessor(p.Name)
		if err != nil {
			continue
		}
		overhead := p.Overheads.ContextSave.Time() +
			p.Overheads.Scheduling.Time() +
			p.Overheads.ContextLoad.Time()
		out += fmt.Sprintf("--- processor %s ---\n", p.Name)
		out += analysis.Report(specs, overhead)
	}
	if out == "" {
		return "no periodic tasks to analyse\n"
	}
	return out
}
