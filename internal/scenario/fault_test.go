package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// faultScenarioJSON is the issue's acceptance scenario: a periodic control
// task with a WCET-overrun fault and the restart-on-miss recovery policy.
// The overrun window [0, 300us) makes the first jobs blow their deadline;
// after the fault clears the task settles back into meeting it.
const faultScenarioJSON = `{
	"name": "wcet-overrun-restart",
	"horizon": "1ms",
	"processors": [{"name": "cpu", "engine": "procedural"}],
	"tasks": [{
		"name": "ctrl", "processor": "cpu",
		"period": "100us", "deadline": "100us", "onMiss": "restart",
		"body": [{"op": "execute", "for": "60us"}]
	}],
	"faults": [{"kind": "wcet_overrun", "task": "ctrl", "factor": 4, "until": "300us"}]
}`

func countFaultKinds(evs []trace.FaultRecord) (injected, recovered, wdFired int) {
	for _, e := range evs {
		switch e.Kind {
		case trace.FaultInjected:
			injected++
		case trace.RecoveryTaken:
			recovered++
		case trace.WatchdogFired:
			wdFired++
		}
	}
	return
}

func TestScenarioWCETOverrunWithRestartPolicy(t *testing.T) {
	for _, engine := range []string{"procedural", "threaded"} {
		src := strings.Replace(faultScenarioJSON, `"procedural"`, `"`+engine+`"`, 1)
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		b, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if _, err := b.RunChecked(); err != nil {
			t.Fatalf("%s: RunChecked: %v", engine, err)
		}
		if got := b.Sys.FinishReason(); got != sim.FinishLimit {
			t.Fatalf("%s: finish reason %v, want limit", engine, got)
		}
		evs := b.Sys.Rec.FaultEvents()
		injected, recovered, _ := countFaultKinds(evs)
		if injected == 0 || recovered == 0 {
			t.Fatalf("%s: want both fault and recovery events, got %d/%d", engine, injected, recovered)
		}
		var sawOverrun, sawRestart bool
		for _, e := range evs {
			sawOverrun = sawOverrun || (e.Kind == trace.FaultInjected && e.Label == "wcet-overrun")
			sawRestart = sawRestart || (e.Kind == trace.RecoveryTaken && e.Label == "miss-restart")
		}
		if !sawOverrun || !sawRestart {
			t.Fatalf("%s: want wcet-overrun + miss-restart events, got %v", engine, evs)
		}
		tsk := b.Tasks["ctrl"]
		if tsk == nil {
			t.Fatalf("%s: task handle not exported", engine)
		}
		if tsk.AbortedCycles() == 0 {
			t.Fatalf("%s: restart policy never aborted a late job", engine)
		}
		// After the fault window closes at 300us the 60us job fits its
		// 100us period again: most of the horizon completes cleanly.
		if tsk.CompletedCycles() < 5 {
			t.Fatalf("%s: only %d cycles completed after recovery", engine, tsk.CompletedCycles())
		}
		if vs := b.Sys.Constraints.Violations(); len(vs) == 0 {
			t.Fatalf("%s: deadline misses not reported as violations", engine)
		}
	}
}

func TestScenarioWatchdogKickAndHang(t *testing.T) {
	const src = `{
		"horizon": "1ms",
		"processors": [{"name": "cpu"}],
		"watchdogs": [{"name": "wd", "processor": "cpu", "timeout": "150us", "task": "ctrl"}],
		"tasks": [{
			"name": "ctrl", "processor": "cpu", "period": "100us",
			"body": [{"op": "kick", "watchdog": "wd"}, {"op": "execute", "for": "40us"}]
		}],
		"faults": [{"kind": "hang", "task": "ctrl", "at": "210us"}]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunChecked(); err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	wd := b.Watchdogs["wd"]
	if wd == nil {
		t.Fatal("watchdog handle not exported")
	}
	if wd.Fired() == 0 {
		t.Fatal("watchdog never fired despite the forever hang")
	}
	if wd.Kicks() < 2 {
		t.Fatalf("kick op not reaching the watchdog: %d kicks", wd.Kicks())
	}
	_, _, wdFired := countFaultKinds(b.Sys.Rec.FaultEvents())
	if wdFired == 0 {
		t.Fatal("watchdog firing not recorded in the trace")
	}
	// The watchdog restart recovers the hung task: cycles keep completing
	// after the 210us hang.
	if got := b.Tasks["ctrl"].CompletedCycles(); got < 5 {
		t.Fatalf("task did not recover from the hang: %d cycles", got)
	}
}

func TestScenarioDeadlockReportedByRunChecked(t *testing.T) {
	// Two tasks wait on events nobody ever signals: RunChecked must return a
	// structured error naming the blocked tasks instead of silently stopping.
	const src = `{
		"horizon": "1ms",
		"processors": [{"name": "cpu"}],
		"events": [{"name": "never"}],
		"tasks": [
			{"name": "a", "processor": "cpu", "body": [{"op": "execute", "for": "5us"}, {"op": "wait", "event": "never"}]},
			{"name": "b", "processor": "cpu", "body": [{"op": "execute", "for": "5us"}, {"op": "wait", "event": "never"}]}
		]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.RunChecked()
	if err == nil {
		t.Fatal("deadlocked scenario returned no error")
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "a ", "b "} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	if b.Sys.FinishReason() != sim.FinishDeadlock {
		t.Fatalf("finish reason %v, want deadlock", b.Sys.FinishReason())
	}
}

func TestScenarioFaultValidation(t *testing.T) {
	base := `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","period":"100us","body":[{"op":"execute","for":"1us"}]}],`
	cases := []struct{ name, tail, want string }{
		{"unknown kind", `"faults":[{"kind":"meteor","task":"t"}]}`, "unknown fault kind"},
		{"unknown task", `"faults":[{"kind":"crash","task":"ghost","at":"1us"}]}`, "unknown task"},
		{"bad factor", `"faults":[{"kind":"wcet_overrun","task":"t","factor":0.5}]}`, "factor"},
		{"no effect", `"faults":[{"kind":"wcet_overrun","task":"t"}]}`, "no effect"},
		{"bad probability", `"faults":[{"kind":"irq_drop","irq":"i","probability":2}]}`, "probability"},
		{"unknown irq", `"faults":[{"kind":"irq_drop","irq":"i"}]}`, "unknown irq"},
		{"empty window", `"faults":[{"kind":"wcet_overrun","task":"t","factor":2,"after":"10us","until":"10us"}]}`, "window"},
		{"bad watchdog timeout", `"watchdogs":[{"name":"w","processor":"p","timeout":"0us"}]}`, "timeout"},
		{"watchdog unknown task", `"watchdogs":[{"name":"w","processor":"p","timeout":"1us","task":"ghost"}]}`, "unknown task"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(base + tc.tail)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	bad := `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"kick","watchdog":"w"}]}]}`
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "unknown watchdog") {
		t.Errorf("kick unknown watchdog: got %v", err)
	}
	noPeriod := `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","onMiss":"abort","body":[{"op":"execute","for":"1us"}]}]}`
	if _, err := Parse([]byte(noPeriod)); err == nil || !strings.Contains(err.Error(), "requires a period") {
		t.Errorf("onMiss without period: got %v", err)
	}
}
