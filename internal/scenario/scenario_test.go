package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDurationUnmarshalNumeric(t *testing.T) {
	// Plain JSON numbers are picoseconds; strings carry units.
	src := `{
	  "horizon": 1000000,
	  "processors": [{"name": "p"}],
	  "tasks": [{"name": "t", "processor": "p", "body": [{"op": "execute", "for": 500000}]}]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Horizon.Time() != sim.Us {
		t.Fatalf("horizon = %v, want 1us", s.Horizon.Time())
	}
	if s.Tasks[0].Body[0].For.Time() != 500*sim.Ns {
		t.Fatalf("for = %v, want 500ns", s.Tasks[0].Body[0].For.Time())
	}
	if _, err := Parse([]byte(`{"horizon": "bogus", "processors": [{"name":"p"}], "tasks": [{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`)); err == nil {
		t.Fatal("bad duration string accepted")
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]sim.Time{
		"5us":    5 * sim.Us,
		"1.5ms":  1500 * sim.Us,
		"250ns":  250 * sim.Ns,
		"3s":     3 * sim.Sec,
		"7ps":    7,
		" 10us ": 10 * sim.Us,
		"0us":    0,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "5", "5 hours", "-3us", "us", "xs"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) succeeded", bad)
		}
	}
}

const figure6JSON = `{
  "name": "figure6",
  "horizon": "900us",
  "processors": [{
    "name": "Processor",
    "overheads": {"scheduling": "5us", "contextSave": "5us", "contextLoad": "5us"}
  }],
  "events": [
    {"name": "Clk", "policy": "fugitive"},
    {"name": "Event_1", "policy": "boolean"}
  ],
  "tasks": [
    {"name": "Function_1", "processor": "Processor", "priority": 5, "loop": true, "body": [
      {"op": "wait", "event": "Clk"},
      {"op": "execute", "for": "100us"},
      {"op": "signal", "event": "Event_1"},
      {"op": "execute", "for": "50us"}
    ]},
    {"name": "Function_2", "processor": "Processor", "priority": 3, "loop": true, "body": [
      {"op": "wait", "event": "Event_1"},
      {"op": "execute", "for": "120us"}
    ]},
    {"name": "Function_3", "processor": "Processor", "priority": 2, "loop": true, "body": [
      {"op": "execute", "for": "1ms"}
    ]}
  ],
  "hardware": [
    {"name": "Clock", "loop": true, "body": [
      {"op": "delay", "for": "500us"},
      {"op": "signal", "event": "Clk"}
    ]}
  ]
}`

// TestFigure6FromJSON elaborates the paper's Figure 6 system from its JSON
// description and checks the same annotated timings the native test checks:
// the declarative path and the Go API must agree exactly.
func TestFigure6FromJSON(t *testing.T) {
	s, err := Parse([]byte(figure6JSON))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()

	rec := b.Sys.Rec
	var f1Run, f2Start, f1Block sim.Time = -1, -1, -1
	for _, c := range rec.StateChanges() {
		switch {
		case c.Task == "Function_1" && c.State.String() == "running" && c.At >= 500*sim.Us && f1Run < 0:
			f1Run = c.At
		case c.Task == "Function_1" && c.State.String() == "waiting" && c.At >= 500*sim.Us && f1Block < 0:
			f1Block = c.At
		case c.Task == "Function_2" && c.State.String() == "running" && c.At >= 600*sim.Us && f2Start < 0:
			f2Start = c.At
		}
	}
	if f1Run != 515*sim.Us {
		t.Errorf("Function_1 preemption start = %v, want 515us", f1Run)
	}
	if f1Block != 665*sim.Us {
		t.Errorf("Function_1 end = %v, want 665us", f1Block)
	}
	if f2Start != 680*sim.Us {
		t.Errorf("Function_2 start = %v, want 680us", f2Start)
	}
}

func TestBuildAllRelationKinds(t *testing.T) {
	src := `{
	  "horizon": "10ms",
	  "processors": [
	    {"name": "p0", "policy": "rr", "quantum": "100us"},
	    {"name": "p1", "engine": "threaded", "policy": "edf"}
	  ],
	  "events": [{"name": "go", "policy": "counter"}],
	  "queues": [{"name": "q", "capacity": 2}],
	  "shared": [{"name": "sv", "initial": 7, "inherit": true}],
	  "constraints": [{"name": "lat", "limit": "1ms"}],
	  "tasks": [
	    {"name": "a", "processor": "p0", "priority": 1, "repeat": 3, "body": [
	      {"op": "lat_start", "constraint": "lat"},
	      {"op": "execute", "for": "50us"},
	      {"op": "put", "queue": "q", "value": 1},
	      {"op": "signal", "event": "go"},
	      {"op": "lat_stop", "constraint": "lat"}
	    ]},
	    {"name": "b", "processor": "p1", "priority": 2, "deadline": "2ms", "repeat": 3, "body": [
	      {"op": "wait", "event": "go"},
	      {"op": "get", "queue": "q"},
	      {"op": "lock", "shared": "sv"},
	      {"op": "execute", "for": "20us"},
	      {"op": "write", "shared": "sv", "value": 9},
	      {"op": "unlock", "shared": "sv"},
	      {"op": "repeat", "count": 2, "body": [{"op": "execute", "for": "10us"}]},
	      {"op": "nopreempt_begin"},
	      {"op": "execute", "for": "5us"},
	      {"op": "nopreempt_end"},
	      {"op": "setprio", "value": 4},
	      {"op": "yield"}
	    ]}
	  ],
	  "hardware": [
	    {"name": "hw", "repeat": 2, "body": [
	      {"op": "delay", "for": "1ms"},
	      {"op": "read", "shared": "sv"}
	    ]}
	  ]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	if got := b.Queues["q"].Receives(); got != 3 {
		t.Errorf("queue receives = %d, want 3", got)
	}
	if got := b.Constraints["lat"].Count(); got != 3 {
		t.Errorf("constraint occurrences = %d, want 3", got)
	}
	if b.Shared["sv"].Writes() != 3 {
		t.Errorf("shared writes = %d", b.Shared["sv"].Writes())
	}
	if !b.Sys.Constraints.OK() {
		t.Errorf("violations: %v", b.Sys.Constraints.Violations())
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]string{
		"unknown field":      `{"bogus": 1}`,
		"no tasks":           `{"processors":[{"name":"p"}]}`,
		"dup processor":      `{"processors":[{"name":"p"},{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"bad engine":         `{"processors":[{"name":"p","engine":"quantum"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"bad policy":         `{"processors":[{"name":"p","policy":"lottery"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"rr sans quantum":    `{"processors":[{"name":"p","policy":"rr"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"unknown processor":  `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"x","body":[{"op":"execute","for":"1us"}]}]}`,
		"empty body":         `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[]}]}`,
		"unknown op":         `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"teleport"}]}]}`,
		"unknown event":      `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"wait","event":"nope"}]}]}`,
		"bad event policy":   `{"processors":[{"name":"p"}],"events":[{"name":"e","policy":"sticky"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"wait","event":"e"}]}]}`,
		"bad capacity":       `{"processors":[{"name":"p"}],"queues":[{"name":"q","capacity":0}],"tasks":[{"name":"t","processor":"p","body":[{"op":"get","queue":"q"}]}]}`,
		"hw execute":         `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}],"hardware":[{"name":"h","body":[{"op":"execute","for":"1us"}]}]}`,
		"loop and period":    `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","loop":true,"period":"1ms","body":[{"op":"execute","for":"1us"}]}]}`,
		"zero exec":          `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute"}]}]}`,
		"bad repeat":         `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"repeat","count":0,"body":[{"op":"execute","for":"1us"}]}]}]}`,
		"bad constraint":     `{"processors":[{"name":"p"}],"constraints":[{"name":"c","limit":"0us"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"bad duration":       `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"5 parsecs"}]}]}`,
		"jitter sans period": `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","jitter":"1us","body":[{"op":"execute","for":"1us"}]}]}`,
		"jitter over period": `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","period":"1us","jitter":"1us","body":[{"op":"execute","for":"1us"}]}]}`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		} else if !strings.Contains(err.Error(), "scenario") && !strings.Contains(err.Error(), "json") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestIRQFromJSON(t *testing.T) {
	src := `{
	  "horizon": "2ms",
	  "processors": [{"name": "cpu"}],
	  "events": [{"name": "rx", "policy": "counter"}],
	  "queues": [{"name": "q", "capacity": 4}],
	  "irqs": [
	    {"name": "nic", "processor": "cpu", "priority": 5, "latency": "2us", "body": [
	      {"op": "execute", "for": "3us"},
	      {"op": "tryput", "queue": "q", "value": 7},
	      {"op": "signal", "event": "rx"}
	    ]}
	  ],
	  "tasks": [
	    {"name": "handler", "processor": "cpu", "priority": 9, "repeat": 3, "body": [
	      {"op": "wait", "event": "rx"},
	      {"op": "get", "queue": "q"},
	      {"op": "execute", "for": "10us"}
	    ]},
	    {"name": "bg", "processor": "cpu", "priority": 1, "loop": true, "body": [
	      {"op": "execute", "for": "100us"}
	    ]}
	  ],
	  "hardware": [
	    {"name": "dev", "repeat": 3, "body": [
	      {"op": "delay", "for": "300us"},
	      {"op": "raise", "irq": "nic"}
	    ]}
	  ]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	if got := b.IRQs["nic"].Serviced(); got != 3 {
		t.Fatalf("serviced = %d, want 3", got)
	}
	if got := b.Queues["q"].Receives(); got != 3 {
		t.Fatalf("receives = %d, want 3", got)
	}
}

func TestIRQValidationErrors(t *testing.T) {
	base := `{"processors":[{"name":"p"}],"queues":[{"name":"q","capacity":1}],
	  "irqs":[{"name":"i","processor":"p","body":[%s]}],
	  "tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`
	bad := map[string]string{
		"isr wait":    `{"op":"wait","event":"e"}`,
		"isr delay":   `{"op":"delay","for":"1us"}`,
		"isr put":     `{"op":"put","queue":"q"}`,
		"isr lock":    `{"op":"lock","shared":"s"}`,
		"isr setprio": `{"op":"setprio","value":1}`,
	}
	for name, op := range bad {
		src := strings.Replace(base, "%s", op, 1)
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Unknown IRQ reference and bad processor.
	cases := []string{
		`{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"raise","irq":"ghost"}]}]}`,
		`{"processors":[{"name":"p"}],"irqs":[{"name":"i","processor":"ghost","body":[{"op":"execute","for":"1us"}]}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		`{"processors":[{"name":"p"}],"irqs":[{"name":"i","processor":"p","body":[]}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
	}
	for i, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBusAndServerFromJSON(t *testing.T) {
	src := `{
	  "horizon": "20ms",
	  "processors": [{"name": "p0"}, {"name": "p1"}],
	  "buses": [{"name": "noc", "perByte": "10ns", "arbitration": "1us"}],
	  "channels": [{"name": "link", "bus": "noc", "capacity": 2, "messageBytes": 100}],
	  "constraints": [{"name": "svc", "limit": "10ms"}],
	  "servers": [
	    {"name": "aper", "processor": "p1", "kind": "deferrable",
	     "priority": 9, "period": "2ms", "budget": "500us"}
	  ],
	  "tasks": [
	    {"name": "producer", "processor": "p0", "priority": 1, "repeat": 4, "body": [
	      {"op": "execute", "for": "100us"},
	      {"op": "send", "channel": "link", "value": 1}
	    ]},
	    {"name": "consumer", "processor": "p1", "priority": 1, "repeat": 4, "body": [
	      {"op": "recv", "channel": "link"},
	      {"op": "execute", "for": "50us"},
	      {"op": "lat_start", "constraint": "svc"},
	      {"op": "submit", "server": "aper", "for": "200us", "constraint": "svc"}
	    ]}
	  ]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	if got := b.Buses["noc"].Transfers(); got != 4 {
		t.Errorf("bus transfers = %d, want 4", got)
	}
	// Each transfer: 1us arbitration + 100*10ns = 2us.
	if got := b.Buses["noc"].BusyTime(); got != 8*sim.Us {
		t.Errorf("bus busy = %v, want 8us", got)
	}
	if got := b.Servers["aper"].Served(); got != 4 {
		t.Errorf("server served = %d, want 4", got)
	}
	if got := b.Constraints["svc"].Count(); got != 4 {
		t.Errorf("constraint count = %d, want 4", got)
	}
	if !b.Sys.Constraints.OK() {
		t.Errorf("violations: %v", b.Sys.Constraints.Violations())
	}
}

func TestBusServerValidationErrors(t *testing.T) {
	cases := map[string]string{
		"dup bus":         `{"processors":[{"name":"p"}],"buses":[{"name":"b"},{"name":"b"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"channel no bus":  `{"processors":[{"name":"p"}],"channels":[{"name":"c","bus":"ghost","capacity":1}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"channel cap":     `{"processors":[{"name":"p"}],"buses":[{"name":"b"}],"channels":[{"name":"c","bus":"b","capacity":0}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"bad server kind": `{"processors":[{"name":"p"}],"servers":[{"name":"s","processor":"p","kind":"lottery","period":"1ms","budget":"1us"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"server budget":   `{"processors":[{"name":"p"}],"servers":[{"name":"s","processor":"p","kind":"polling","period":"1ms","budget":"2ms"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"execute","for":"1us"}]}]}`,
		"unknown channel": `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"send","channel":"ghost"}]}]}`,
		"unknown server":  `{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"submit","server":"ghost","for":"1us"}]}]}`,
		"submit no work":  `{"processors":[{"name":"p"}],"servers":[{"name":"s","processor":"p","kind":"polling","period":"1ms","budget":"1us"}],"tasks":[{"name":"t","processor":"p","body":[{"op":"submit","server":"s"}]}]}`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPeriodicTaskFromJSON(t *testing.T) {
	src := `{
	  "horizon": "1ms",
	  "processors": [{"name": "p"}],
	  "tasks": [
	    {"name": "tick", "processor": "p", "period": "100us", "deadline": "100us", "body": [
	      {"op": "execute", "for": "10us"}
	    ]}
	  ]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	st := b.Sys.Stats(0)
	ts, ok := st.TaskByName("tick")
	// Releases at 0, 100us, ..., 1ms: RunUntil includes events at exactly
	// the horizon, so 11 activations.
	if !ok || ts.Activations != 11 {
		t.Fatalf("activations = %+v, want 11", ts.Activations)
	}
}
