package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
)

// commRichJSON exercises every continuation-expressible op kind: queue
// put/get, tryput, shared lock/unlock/read/write, events, nopreempt regions,
// setprio, yield, repeat loops, execute_trace, an IRQ raised from a task, a
// watchdog kick and a hang fault recovered by the watchdog.
const commRichJSON = `{
	"name": "comm-rich",
	"horizon": "2ms",
	"processors": [{"name": "cpu", "overheads": {"scheduling": "1us", "contextSave": "1us", "contextLoad": "1us"}}],
	"events": [{"name": "go", "policy": "counter"}],
	"queues": [{"name": "q", "capacity": 2}],
	"shared": [{"name": "sv", "initial": 0, "inherit": true}],
	"traces": {"frames": ["8us", "12us", "5us"]},
	"irqs": [{"name": "rx", "processor": "cpu", "priority": 1, "latency": "2us", "body": [
		{"op": "execute", "for": "3us"}
	]}],
	"watchdogs": [{"name": "wd", "processor": "cpu", "timeout": "200us", "task": "worker"}],
	"tasks": [
		{"name": "worker", "processor": "cpu", "priority": 5, "period": "150us", "onMiss": "abort", "body": [
			{"op": "kick", "watchdog": "wd"},
			{"op": "execute_trace", "trace": "frames"},
			{"op": "lock", "shared": "sv"},
			{"op": "execute", "for": "4us"},
			{"op": "write", "shared": "sv", "value": 7},
			{"op": "unlock", "shared": "sv"},
			{"op": "tryput", "queue": "q", "value": 1},
			{"op": "signal", "event": "go"}
		]},
		{"name": "reader", "processor": "cpu", "priority": 4, "loop": true, "body": [
			{"op": "wait", "event": "go"},
			{"op": "read", "shared": "sv"},
			{"op": "repeat", "count": 2, "body": [
				{"op": "execute", "for": "6us"},
				{"op": "yield"}
			]}
		]},
		{"name": "drain", "processor": "cpu", "priority": 3, "loop": true, "body": [
			{"op": "get", "queue": "q"},
			{"op": "nopreempt_begin"},
			{"op": "execute", "for": "5us"},
			{"op": "nopreempt_end"},
			{"op": "setprio", "value": 3},
			{"op": "raise", "irq": "rx"},
			{"op": "delay", "for": "25us"}
		]}
	],
	"faults": [{"kind": "hang", "task": "worker", "at": "400us"}]
}`

// smpJitterJSON exercises continuation tasks on a two-core global-domain
// processor with release jitter and the threaded engine variant via replace.
const smpJitterJSON = `{
	"name": "smp-jitter",
	"horizon": "2ms",
	"processors": [{"name": "cpu", "engine": "procedural", "cores": 2, "domain": "global",
		"overheads": {"scheduling": "1us", "contextSave": "1us", "contextLoad": "1us"}}],
	"tasks": [
		{"name": "a", "processor": "cpu", "priority": 6, "period": "90us", "jitter": "9us", "body": [
			{"op": "execute", "for": "30us"}
		]},
		{"name": "b", "processor": "cpu", "priority": 5, "period": "120us", "body": [
			{"op": "execute", "for": "45us"},
			{"op": "delay", "for": "10us"},
			{"op": "execute", "for": "15us"}
		]},
		{"name": "c", "processor": "cpu", "priority": 4, "period": "200us", "onMiss": "skip_next", "body": [
			{"op": "execute", "for": "80us"}
		]}
	]
}`

// contGoldenScenarios are the four differential goldens of the continuation
// engine at the scenario layer. Single-core goldens are held to raw
// byte-identical trace exports; the multicore golden uses the canonical
// signature instead, because two overhead charges completing at the same
// instant on different cores are recorded in executor drain order, which
// legitimately permutes between a goroutine (thread) and a continuation
// (method) executor — same windows, same metrics, different record order.
var contGoldenScenarios = []struct {
	name      string
	src       string
	multicore bool
}{
	{"figure6", figure6JSON, false},
	{"wcet-restart", faultScenarioJSON, false},
	{"comm-rich", commRichJSON, false},
	{"smp-jitter", smpJitterJSON, true},
}

// canonicalTrace serializes every record kind of a trace order-insensitively
// within one instant: per-task state changes in task-local order, all other
// record kinds sorted. Two simulations with identical behaviour but
// different same-instant record interleavings canonicalize identically.
func canonicalTrace(rec *trace.Recorder) string {
	var b strings.Builder
	perTask := map[string][]string{}
	for _, c := range rec.StateChanges() {
		perTask[c.Task] = append(perTask[c.Task],
			fmt.Sprintf("%v %s core%d %v", c.At, c.CPU, c.Core, c.State))
	}
	tasks := make([]string, 0, len(perTask))
	for task := range perTask {
		tasks = append(tasks, task)
	}
	sort.Strings(tasks)
	for _, task := range tasks {
		fmt.Fprintf(&b, "task %s: %s\n", task, strings.Join(perTask[task], "; "))
	}
	var lines []string
	for _, o := range rec.Overheads() {
		lines = append(lines, fmt.Sprintf("ov %s %s core%d %s %v..%v", o.CPU, o.Task, o.Core, o.Kind, o.Start, o.End))
	}
	for _, a := range rec.Accesses() {
		lines = append(lines, fmt.Sprintf("acc %v %s %s %v", a.At, a.Actor, a.Object, a.Kind))
	}
	for _, m := range rec.Migrations() {
		lines = append(lines, fmt.Sprintf("mig %v %s %s %d->%d", m.At, m.Task, m.CPU, m.From, m.To))
	}
	for _, f := range rec.FaultEvents() {
		lines = append(lines, fmt.Sprintf("fault %v %s %s %s", f.At, f.Kind, f.Task, f.Label))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// withEngine returns the scenario with every software task's body form set
// to the given engine value, via the parsed description (not string edits).
func withEngine(t *testing.T, src, engine string) *System {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Tasks {
		s.Tasks[i].Engine = engine
	}
	return s
}

// runScenario elaborates and runs a description, returning the built system,
// the SHA-256 of the raw trace export and the filtered rtos_* metrics
// serialization.
func runScenario(t *testing.T, s *System) (built *Built, traceHash, metricsKey string) {
	t.Helper()
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	h := sha256.New()
	if err := b.Sys.Rec.WriteJSON(h); err != nil {
		t.Fatal(err)
	}
	var keep []json.RawMessage
	for _, m := range b.Sys.Metrics.Snapshot().Metrics {
		if !strings.HasPrefix(m.Name, "rtos_") || m.Name == "rtos_continuation_resumes_total" {
			continue
		}
		enc, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, enc)
	}
	mk, err := json.Marshal(keep)
	if err != nil {
		t.Fatal(err)
	}
	return b, hex.EncodeToString(h.Sum(nil)), string(mk)
}

// TestContinuationGoldens is the scenario-level differential golden of the
// continuation engine: four canonical scenarios, each elaborated twice —
// goroutine bodies and continuation bodies — on both RTOS engines, must
// produce byte-identical trace exports and identical rtos_* metrics.
func TestContinuationGoldens(t *testing.T) {
	for _, g := range contGoldenScenarios {
		for _, eng := range []string{"procedural", "threaded"} {
			t.Run(g.name+"/"+eng, func(t *testing.T) {
				src := g.src
				if eng == "threaded" {
					src = forceProcessorEngine(t, src, "threaded")
				}
				bG, hashG, metG := runScenario(t, withEngine(t, src, "goroutine"))
				bC, hashC, metC := runScenario(t, withEngine(t, src, "continuation"))
				if g.multicore {
					if canonicalTrace(bG.Sys.Rec) != canonicalTrace(bC.Sys.Rec) {
						t.Errorf("canonical traces differ between body forms")
						diffScenarioTraces(t, src)
					}
				} else if hashG != hashC {
					t.Errorf("trace exports differ between body forms: %s vs %s", hashG, hashC)
					diffScenarioTraces(t, src)
				}
				if metG != metC {
					t.Errorf("rtos_* metrics differ between body forms:\n goroutine:    %s\n continuation: %s", metG, metC)
				}
			})
		}
	}
}

// forceProcessorEngine re-parses the description with every processor set to
// the given RTOS engine.
func forceProcessorEngine(t *testing.T, src, engine string) string {
	t.Helper()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(src), &raw); err != nil {
		t.Fatal(err)
	}
	var procs []map[string]json.RawMessage
	if err := json.Unmarshal(raw["processors"], &procs); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		enc, _ := json.Marshal(engine)
		p["engine"] = enc
	}
	enc, err := json.Marshal(procs)
	if err != nil {
		t.Fatal(err)
	}
	raw["processors"] = enc
	out, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// diffScenarioTraces re-runs a diverged golden with recorders kept and
// reports the first differing records, for debuggability.
func diffScenarioTraces(t *testing.T, src string) {
	t.Helper()
	bG, err := withEngine(t, src, "goroutine").Build()
	if err != nil {
		t.Fatal(err)
	}
	bG.Run()
	bC, err := withEngine(t, src, "continuation").Build()
	if err != nil {
		t.Fatal(err)
	}
	bC.Run()
	horizon := bG.Desc.Horizon.Time()
	t.Logf("trace diff:\n%s", trace.Diff(bG.Sys.Rec, bC.Sys.Rec, horizon, 8))
}

// TestContinuationResumesCounted checks that a continuation-bodied scenario
// advances the rtos_continuation_resumes_total counter.
func TestContinuationResumesCounted(t *testing.T) {
	s := withEngine(t, figure6JSON, "continuation")
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	m, ok := b.Sys.Metrics.Snapshot().Get("rtos_continuation_resumes_total")
	if !ok {
		t.Fatal("rtos_continuation_resumes_total not registered")
	}
	if m.Value == 0 {
		t.Error("continuation scenario ran but the resume counter is zero")
	}
	for name, tk := range b.Tasks {
		if !tk.IsContinuation() {
			t.Errorf("task %q not built as a continuation", name)
		}
	}
}

// TestContinuationEngineValidation covers the per-task engine knob's
// validation: unknown values are rejected, bus channel ops are rejected for
// continuation bodies (also inside repeat), and valid combinations parse.
func TestContinuationEngineValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"unknown engine value",
			`{"processors":[{"name":"p"}],"tasks":[{"name":"t","processor":"p","engine":"fiber","body":[{"op":"execute","for":"1us"}]}]}`,
			`unknown engine "fiber"`,
		},
		{
			"continuation with send",
			`{"processors":[{"name":"p"}],"buses":[{"name":"bus"}],"channels":[{"name":"ch","bus":"bus","capacity":1}],
			 "tasks":[{"name":"t","processor":"p","engine":"continuation","body":[{"op":"send","channel":"ch","value":1}]}]}`,
			"bus channel ops need a goroutine body",
		},
		{
			"continuation with recv inside repeat",
			`{"processors":[{"name":"p"}],"buses":[{"name":"bus"}],"channels":[{"name":"ch","bus":"bus","capacity":1}],
			 "tasks":[{"name":"t","processor":"p","engine":"continuation","body":[{"op":"repeat","count":2,"body":[{"op":"recv","channel":"ch"}]}]}]}`,
			"bus channel ops need a goroutine body",
		},
		{
			"goroutine body keeps send",
			`{"processors":[{"name":"p"}],"buses":[{"name":"bus"}],"channels":[{"name":"ch","bus":"bus","capacity":1}],
			 "tasks":[{"name":"t","processor":"p","engine":"goroutine","body":[{"op":"send","channel":"ch","value":1}]}]}`,
			"",
		},
		{
			"continuation with affinity and fault",
			`{"processors":[{"name":"p","cores":2}],
			 "tasks":[{"name":"t","processor":"p","engine":"continuation","affinity":1,"period":"100us","body":[{"op":"execute","for":"10us"}]}],
			 "faults":[{"kind":"crash","task":"t","at":"50us"}]}`,
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestContinuationActivationsLower checks the perf motivation end to end at
// the scenario layer: the continuation form of a golden scenario must need
// fewer kernel activations than its goroutine form.
func TestContinuationActivationsLower(t *testing.T) {
	run := func(engine string) uint64 {
		b, err := withEngine(t, smpJitterJSON, engine).Build()
		if err != nil {
			t.Fatal(err)
		}
		b.Run()
		return b.Sys.K.Activations()
	}
	g, c := run("goroutine"), run("continuation")
	if c >= g {
		t.Errorf("continuation form used %d activations, goroutine form %d; want fewer", c, g)
	}
}
