package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func mustParse(t *testing.T, js string) *System {
	t.Helper()
	s, err := Parse([]byte(js))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

func dur(t *testing.T, s string) sim.Time {
	t.Helper()
	d, err := ParseDuration(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const partitionFixture = `{
  "name": "part",
  "horizon": "1ms",
  "processors": [
    {"name": "a", "shard": "x"},
    {"name": "b", "shard": "y"},
    {"name": "c"}
  ],
  "buses": [{"name": "noc", "perByte": "4ns", "arbitration": "200ns"}],
  "channels": [
    {"name": "ab", "bus": "noc", "capacity": 4, "messageBytes": 100},
    {"name": "bc", "bus": "noc", "capacity": 4}
  ],
  "tasks": [
    {"name": "ta", "processor": "a", "priority": 5, "repeat": 2, "body": [
      {"op": "execute", "for": "1us"},
      {"op": "send", "channel": "ab", "value": 1},
      {"op": "send", "channel": "bc", "value": 2}
    ]},
    {"name": "tb", "processor": "b", "priority": 5, "repeat": 2, "body": [
      {"op": "recv", "channel": "ab"},
      {"op": "execute", "for": "2us"}
    ]},
    {"name": "tc", "processor": "c", "priority": 5, "repeat": 2, "body": [
      {"op": "recv", "channel": "bc"},
      {"op": "execute", "for": "3us"}
    ]}
  ]
}`

func TestPartitionByLabels(t *testing.T) {
	s := mustParse(t, partitionFixture)
	plan, err := s.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 3 {
		t.Fatalf("want 3 groups, got %+v", plan.Groups)
	}
	if plan.Groups[0].Label != "x" || plan.Groups[1].Label != "y" || plan.Groups[2].Label != "" {
		t.Errorf("labels: %+v", plan.Groups)
	}
	if len(plan.Links) != 2 {
		t.Fatalf("want 2 links, got %+v", plan.Links)
	}
	// Links sort by channel name: ab then bc.
	ab, bc := plan.Links[0], plan.Links[1]
	if ab.Channel != "ab" || ab.From != 0 || ab.To != 1 {
		t.Errorf("ab link: %+v", ab)
	}
	// Lookahead = arbitration + messageBytes*perByte = 200ns + 100*4ns.
	if want := dur(t, "600ns"); ab.Lookahead != want {
		t.Errorf("ab lookahead = %v, want %v", ab.Lookahead, want)
	}
	// bc defaults to 1 message byte: 200ns + 4ns.
	if want := dur(t, "204ns"); bc.Channel != "bc" || bc.From != 0 || bc.To != 2 || bc.Lookahead != want {
		t.Errorf("bc link: %+v, want lookahead %v", bc, want)
	}
	// Bus contention pins the bus to the sender shard.
	if plan.Buses["noc"] != 0 {
		t.Errorf("bus owner = %d, want 0", plan.Buses["noc"])
	}
}

func TestPartitionMergeToTarget(t *testing.T) {
	s := mustParse(t, partitionFixture)
	plan, err := s.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 2 {
		t.Fatalf("want 2 groups, got %+v", plan.Groups)
	}
	total := 0
	for _, g := range plan.Groups {
		total += len(g.Processors) + len(g.Hardware)
	}
	if total != 3 {
		t.Errorf("partition lost members: %+v", plan.Groups)
	}
	one, err := s.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Groups) != 1 || len(one.Links) != 0 {
		t.Errorf("partition(1): %+v", one)
	}
}

// Processors coupled by synchronous state (here a shared event) cannot carry
// different shard labels.
func TestPartitionLabelConflict(t *testing.T) {
	js := `{
  "name": "conflict",
  "horizon": "1ms",
  "processors": [
    {"name": "a", "shard": "x"},
    {"name": "b", "shard": "y"}
  ],
  "events": [{"name": "go"}],
  "tasks": [
    {"name": "ta", "processor": "a", "priority": 5, "body": [{"op": "signal", "event": "go"}]},
    {"name": "tb", "processor": "b", "priority": 5, "body": [{"op": "wait", "event": "go"}]}
  ]
}`
	s := mustParse(t, js)
	_, err := s.Partition(0)
	if err == nil || !strings.Contains(err.Error(), "cannot be placed on different shards") {
		t.Fatalf("want label-conflict error, got %v", err)
	}
}

// Every synchronous coupling kind must union its users into one atom.
func TestPartitionAtomCoupling(t *testing.T) {
	cases := []struct {
		name string
		ops  [2]string
		defs string
	}{
		{"event", [2]string{`{"op": "signal", "event": "e"}`, `{"op": "wait", "event": "e"}`},
			`"events": [{"name": "e"}],`},
		{"queue", [2]string{`{"op": "put", "queue": "q", "value": 1}`, `{"op": "get", "queue": "q"}`},
			`"queues": [{"name": "q", "capacity": 4}],`},
		{"shared", [2]string{`{"op": "write", "shared": "v", "value": 1}`, `{"op": "read", "shared": "v"}`},
			`"shared": [{"name": "v"}],`},
		{"constraint", [2]string{`{"op": "lat_start", "constraint": "c"}`, `{"op": "lat_stop", "constraint": "c"}`},
			`"constraints": [{"name": "c", "limit": "1ms"}],`},
		{"trace", [2]string{`{"op": "execute_trace", "trace": "tr"}`, `{"op": "execute_trace", "trace": "tr"}`},
			`"traces": {"tr": ["1us", "2us"]},`},
	}
	for _, tc := range cases {
		js := `{
  "name": "couple",
  "horizon": "1ms",
  "processors": [{"name": "a"}, {"name": "b"}],
  ` + tc.defs + `
  "tasks": [
    {"name": "ta", "processor": "a", "priority": 5, "body": [` + tc.ops[0] + `]},
    {"name": "tb", "processor": "b", "priority": 5, "body": [` + tc.ops[1] + `]}
  ]
}`
		s := mustParse(t, js)
		plan, err := s.Partition(0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(plan.Groups) != 1 {
			t.Errorf("%s: users not unioned into one atom: %+v", tc.name, plan.Groups)
		}
	}
}

func TestPartitionMultiShardValidation(t *testing.T) {
	noHorizon := strings.Replace(partitionFixture, `"horizon": "1ms",`, "", 1)
	s := mustParse(t, noHorizon)
	if _, err := s.Partition(0); err == nil || !strings.Contains(err.Error(), "finite horizon") {
		t.Errorf("want horizon error, got %v", err)
	}

	zeroLA := strings.Replace(partitionFixture,
		`{"name": "noc", "perByte": "4ns", "arbitration": "200ns"}`,
		`{"name": "noc"}`, 1)
	s = mustParse(t, zeroLA)
	if _, err := s.Partition(0); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("want lookahead error, got %v", err)
	}

	if _, err := mustParse(t, partitionFixture).Partition(-1); err == nil {
		t.Errorf("want negative-target error")
	}
}

func TestHasShardLabels(t *testing.T) {
	if !mustParse(t, partitionFixture).HasShardLabels() {
		t.Error("labeled fixture reports no labels")
	}
	plain := strings.ReplaceAll(strings.ReplaceAll(partitionFixture,
		`, "shard": "x"`, ""), `, "shard": "y"`, "")
	if mustParse(t, plain).HasShardLabels() {
		t.Error("unlabeled fixture reports labels")
	}
}

// Shard labels must not perturb the scenario's canonical content hash: the
// daemon's result cache keys on it, and a labeled scenario simulated
// sequentially is the same simulation.
func TestShardLabelOmittedFromUnlabeledHash(t *testing.T) {
	labeled := mustParse(t, partitionFixture)
	plain := mustParse(t, strings.ReplaceAll(strings.ReplaceAll(partitionFixture,
		`, "shard": "x"`, ""), `, "shard": "y"`, ""))
	lh, err := labeled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ph, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if lh == ph {
		t.Errorf("shard labels must be part of the canonical hash (they change the engine): %s", lh)
	}
}
