package scenario

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file computes shard partitions for the parallel multi-kernel engine
// (internal/psim). A partition is only legal when the shards interact
// exclusively through latency-bearing bus channels: every other coupling —
// events, queues, shared variables, constraints, servers, IRQs, watchdogs,
// execution traces — forces the participants onto the same shard, because
// those objects are mutated synchronously with no simulated latency to hide
// the cross-kernel skew behind. The partitioner therefore first folds the
// scenario into "atoms" (maximal sets of processors and hardware tasks
// transitively connected by anything but a channel), then groups atoms by
// their shard labels, and finally merges small groups to meet a target
// count. Channels crossing the resulting cut become the shard links; their
// minimal bus transfer time is the conservative lookahead.

// ShardGroup is one shard of a partition plan: the processors and hardware
// tasks elaborated onto one kernel.
type ShardGroup struct {
	// Label is the scenario-provided shard label, when the group carries one.
	Label string
	// Processors and Hardware list the members in declaration order.
	Processors []string
	Hardware   []string
}

// ChannelRoute locates a channel in the plan: the shard its senders live on
// and the shard its receivers live on (equal for shard-local channels).
type ChannelRoute struct {
	From, To int
}

// ChannelLink is one cross-shard channel: messages sent on shard From
// surface on shard To no earlier than the sender's clock plus Lookahead
// (the channel's minimal bus transfer time).
type ChannelLink struct {
	Channel   string
	From, To  int
	Lookahead sim.Time
}

// ShardPlan is a validated partition of a scenario for the parallel engine.
// The per-kind maps assign every named object to its owning group, so a
// shard build can filter elaboration to exactly the local objects.
type ShardPlan struct {
	Groups  []ShardGroup
	Horizon sim.Time

	Events      map[string]int
	Queues      map[string]int
	Shared      map[string]int
	Constraints map[string]int
	Servers     map[string]int
	IRQs        map[string]int
	Watchdogs   map[string]int
	Buses       map[string]int

	// Channels routes every channel; Links lists only the cross-shard ones.
	Channels map[string]ChannelRoute
	Links    []ChannelLink
}

// dsu is a plain union-find over node indices.
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{parent: p}
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		// Keep the smaller root so atom ordering follows declaration order.
		if rb < ra {
			ra, rb = rb, ra
		}
		d.parent[rb] = ra
	}
}

// partitioner accumulates object usage while walking the scenario bodies.
// Nodes are processors (0..P-1) then hardware tasks (P..P+H-1).
type partitioner struct {
	s     *System
	d     *dsu
	procs map[string]int // processor name -> node

	// firstUser records, per object kind and name, the first node that uses
	// the object; subsequent users are unioned with it.
	events, queues, shared, constraints, servers, irqs, watchdogs, traces map[string]int

	// chanSenders/chanReceivers record the first sender/receiver node per
	// channel; busSenders the first sender node per bus. Channels are the
	// cut-allowed edges, but all senders of one bus contend on its mutex,
	// so they must be co-located, as must all receivers of one channel
	// (they share its queue object).
	chanSenders, chanReceivers map[string]int
	busSenders                 map[string]int
}

func (p *partitioner) use(m map[string]int, name string, node int) {
	if first, ok := m[name]; ok {
		p.d.union(first, node)
		return
	}
	m[name] = node
}

// channelBus returns the bus of a channel (validated to exist).
func (p *partitioner) channelBus(name string) string {
	for _, c := range p.s.Channels {
		if c.Name == name {
			return c.Bus
		}
	}
	return ""
}

func (p *partitioner) walkOps(node int, ops []Op) {
	for _, op := range ops {
		switch op.Op {
		case "wait", "signal":
			p.use(p.events, op.Event, node)
		case "put", "get", "tryput":
			p.use(p.queues, op.Queue, node)
		case "lock", "unlock", "read", "write":
			p.use(p.shared, op.Shared, node)
		case "lat_start", "lat_stop":
			p.use(p.constraints, op.Constraint, node)
		case "execute_trace":
			// Trace cursors are shared build state: all consumers of one
			// trace must see a single consumption order.
			p.use(p.traces, op.Trace, node)
		case "kick":
			p.use(p.watchdogs, op.Watchdog, node)
			for _, w := range p.s.Watchdogs {
				if w.Name == op.Watchdog {
					p.d.union(node, p.procs[w.Processor])
				}
			}
		case "raise":
			p.use(p.irqs, op.IRQ, node)
			for _, irq := range p.s.IRQs {
				if irq.Name == op.IRQ {
					p.d.union(node, p.procs[irq.Processor])
				}
			}
		case "submit":
			p.use(p.servers, op.Server, node)
			for _, sv := range p.s.Servers {
				if sv.Name == op.Server {
					p.d.union(node, p.procs[sv.Processor])
				}
			}
			if op.Constraint != "" {
				p.use(p.constraints, op.Constraint, node)
			}
		case "send":
			p.use(p.chanSenders, op.Channel, node)
			p.use(p.busSenders, p.channelBus(op.Channel), node)
		case "recv":
			p.use(p.chanReceivers, op.Channel, node)
		case "repeat":
			p.walkOps(node, op.Body)
		}
	}
}

// Partition computes the shard plan for this scenario. target selects the
// grouping: 0 groups by shard labels only (each unlabeled atom becomes its
// own shard), 1 collapses everything onto a single shard, and N > 1 merges
// the smallest groups until at most N remain. Atoms — processors and
// hardware tasks coupled by anything but a channel — are never split.
//
// A multi-shard plan additionally requires a finite horizon and a positive
// lookahead (bus arbitration plus per-message transfer time) on every
// cross-shard channel; violations are reported as errors rather than being
// silently run sequentially.
func (s *System) Partition(target int) (*ShardPlan, error) {
	if target < 0 {
		return nil, fmt.Errorf("scenario: negative shard count %d", target)
	}
	nproc := len(s.Processors)
	nodes := nproc + len(s.Hardware)
	if nodes == 0 {
		return nil, fmt.Errorf("scenario: nothing to partition (no processors or hardware tasks)")
	}
	p := &partitioner{
		s:             s,
		d:             newDSU(nodes),
		procs:         make(map[string]int, nproc),
		events:        map[string]int{},
		queues:        map[string]int{},
		shared:        map[string]int{},
		constraints:   map[string]int{},
		servers:       map[string]int{},
		irqs:          map[string]int{},
		watchdogs:     map[string]int{},
		traces:        map[string]int{},
		chanSenders:   map[string]int{},
		chanReceivers: map[string]int{},
		busSenders:    map[string]int{},
	}
	for i, cpu := range s.Processors {
		p.procs[cpu.Name] = i
	}

	// Objects anchored to a processor couple their users to that processor.
	for _, sv := range s.Servers {
		p.use(p.servers, sv.Name, p.procs[sv.Processor])
	}
	for _, irq := range s.IRQs {
		node := p.procs[irq.Processor]
		p.use(p.irqs, irq.Name, node)
		p.walkOps(node, irq.Body)
	}
	for _, w := range s.Watchdogs {
		p.use(p.watchdogs, w.Name, p.procs[w.Processor])
	}
	for _, t := range s.Tasks {
		p.walkOps(p.procs[t.Processor], t.Body)
	}
	for i, h := range s.Hardware {
		p.walkOps(nproc+i, h.Body)
	}

	// Co-locate all receivers of each channel (walkOps already unioned
	// them via chanReceivers/use) and check per-bus sender co-location —
	// both already enforced by use(); nothing further to union here.

	// Resolve atoms and their shard labels.
	atomOf := make([]int, nodes)       // node -> atom index
	var atomRoots []int                // atom index -> root node
	rootAtom := make(map[int]int, 8)   // root node -> atom index
	atomLabel := make(map[int]string)  // atom index -> label
	atomLabelBy := make(map[int]string) // atom index -> processor that set it
	for n := 0; n < nodes; n++ {
		r := p.d.find(n)
		a, ok := rootAtom[r]
		if !ok {
			a = len(atomRoots)
			rootAtom[r] = a
			atomRoots = append(atomRoots, r)
		}
		atomOf[n] = a
	}
	for i, cpu := range s.Processors {
		if cpu.Shard == "" {
			continue
		}
		a := atomOf[i]
		if prev, ok := atomLabel[a]; ok && prev != cpu.Shard {
			return nil, fmt.Errorf(
				"scenario: processors %q (shard %q) and %q (shard %q) share synchronous state and cannot be placed on different shards",
				atomLabelBy[a], prev, cpu.Name, cpu.Shard)
		}
		atomLabel[a] = cpu.Shard
		atomLabelBy[a] = cpu.Name
	}

	// Form groups: atoms sharing a label coalesce; unlabeled atoms stand
	// alone. Group order follows first appearance (declaration order).
	groupOf := make([]int, len(atomRoots)) // atom -> group
	var groupLabels []string
	labelGroup := map[string]int{}
	for a := range atomRoots {
		if lbl, ok := atomLabel[a]; ok {
			if g, seen := labelGroup[lbl]; seen {
				groupOf[a] = g
				continue
			}
			labelGroup[lbl] = len(groupLabels)
			groupOf[a] = len(groupLabels)
			groupLabels = append(groupLabels, lbl)
			continue
		}
		groupOf[a] = len(groupLabels)
		groupLabels = append(groupLabels, "")
	}

	// Merge towards the target count: repeatedly fold the lightest group
	// into the next-lightest (weight = member count, ties by index so the
	// result is deterministic).
	ngroups := len(groupLabels)
	if target == 1 {
		for a := range groupOf {
			groupOf[a] = 0
		}
		ngroups = 1
	} else if target > 1 && ngroups > target {
		weight := make([]int, ngroups)
		for n := 0; n < nodes; n++ {
			weight[groupOf[atomOf[n]]]++
		}
		alias := make([]int, ngroups)
		for i := range alias {
			alias[i] = i
		}
		live := ngroups
		for live > target {
			lightest, second := -1, -1
			for g := 0; g < ngroups; g++ {
				if alias[g] != g {
					continue
				}
				switch {
				case lightest < 0 || weight[g] < weight[lightest]:
					second = lightest
					lightest = g
				case second < 0 || weight[g] < weight[second]:
					second = g
				}
			}
			// Fold into the lower index so group order stays stable.
			survivor, dead := lightest, second
			if survivor > dead {
				survivor, dead = dead, survivor
			}
			weight[survivor] += weight[dead]
			alias[dead] = survivor
			live--
		}
		resolve := func(g int) int {
			for alias[g] != g {
				g = alias[g]
			}
			return g
		}
		compact := map[int]int{}
		var order []int
		for g := 0; g < ngroups; g++ {
			r := resolve(g)
			if _, ok := compact[r]; !ok {
				compact[r] = len(order)
				order = append(order, r)
			}
		}
		for a := range groupOf {
			groupOf[a] = compact[resolve(groupOf[a])]
		}
		relabel := make([]string, len(order))
		for i, r := range order {
			relabel[i] = groupLabels[r]
		}
		groupLabels = relabel
		ngroups = len(order)
	}

	plan := &ShardPlan{
		Groups:      make([]ShardGroup, ngroups),
		Horizon:     sim.Time(s.Horizon),
		Events:      map[string]int{},
		Queues:      map[string]int{},
		Shared:      map[string]int{},
		Constraints: map[string]int{},
		Servers:     map[string]int{},
		IRQs:        map[string]int{},
		Watchdogs:   map[string]int{},
		Buses:       map[string]int{},
		Channels:    map[string]ChannelRoute{},
	}
	for g := range plan.Groups {
		plan.Groups[g].Label = groupLabels[g]
	}
	nodeGroup := func(n int) int { return groupOf[atomOf[n]] }
	for i, cpu := range s.Processors {
		g := nodeGroup(i)
		plan.Groups[g].Processors = append(plan.Groups[g].Processors, cpu.Name)
	}
	for i, h := range s.Hardware {
		g := nodeGroup(nproc + i)
		plan.Groups[g].Hardware = append(plan.Groups[g].Hardware, h.Name)
	}

	// Assign object ownership: the group of any user; unused objects land
	// on group 0 so they still elaborate exactly once.
	owner := func(users map[string]int, name string) int {
		if n, ok := users[name]; ok {
			return nodeGroup(n)
		}
		return 0
	}
	for _, e := range s.Events {
		plan.Events[e.Name] = owner(p.events, e.Name)
	}
	for _, q := range s.Queues {
		plan.Queues[q.Name] = owner(p.queues, q.Name)
	}
	for _, sv := range s.Shared {
		plan.Shared[sv.Name] = owner(p.shared, sv.Name)
	}
	for _, c := range s.Constraints {
		plan.Constraints[c.Name] = owner(p.constraints, c.Name)
	}
	for _, sv := range s.Servers {
		plan.Servers[sv.Name] = owner(p.servers, sv.Name)
	}
	for _, irq := range s.IRQs {
		plan.IRQs[irq.Name] = owner(p.irqs, irq.Name)
	}
	for _, w := range s.Watchdogs {
		plan.Watchdogs[w.Name] = owner(p.watchdogs, w.Name)
	}
	for _, b := range s.Buses {
		plan.Buses[b.Name] = owner(p.busSenders, b.Name)
	}

	// Route channels and derive the cross-shard links.
	for _, c := range s.Channels {
		from, to := -1, -1
		if n, ok := p.chanSenders[c.Name]; ok {
			from = nodeGroup(n)
		}
		if n, ok := p.chanReceivers[c.Name]; ok {
			to = nodeGroup(n)
		}
		switch {
		case from < 0 && to < 0:
			from, to = plan.Buses[c.Bus], plan.Buses[c.Bus]
		case from < 0:
			from = to
		case to < 0:
			to = from
		}
		plan.Channels[c.Name] = ChannelRoute{From: from, To: to}
		if from != to {
			size := c.MessageBytes
			if size < 1 {
				size = 1
			}
			var def BusDef
			for _, b := range s.Buses {
				if b.Name == c.Bus {
					def = b
				}
			}
			la := sim.Time(def.Arbitration) + sim.Time(size)*sim.Time(def.PerByte)
			plan.Links = append(plan.Links, ChannelLink{
				Channel: c.Name, From: from, To: to, Lookahead: la,
			})
		}
	}
	sort.Slice(plan.Links, func(i, j int) bool { return plan.Links[i].Channel < plan.Links[j].Channel })

	if ngroups > 1 {
		if plan.Horizon <= 0 {
			return nil, fmt.Errorf("scenario: multi-shard simulation requires a finite horizon")
		}
		for _, l := range plan.Links {
			if l.Lookahead <= 0 {
				return nil, fmt.Errorf(
					"scenario: cross-shard channel %q has zero lookahead: its bus needs a positive arbitration or per-byte transfer time",
					l.Channel)
			}
		}
	}
	return plan, nil
}

// HasShardLabels reports whether any processor carries a shard label, which
// opts the scenario into the parallel engine even without a -shards flag.
func (s *System) HasShardLabels() bool {
	for _, cpu := range s.Processors {
		if cpu.Shard != "" {
			return true
		}
	}
	return false
}
