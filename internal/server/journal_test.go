package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// journalLines reads the journal file's lines (for structural assertions).
func journalLines(t *testing.T, dir string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	data := readScenario(t, "figure6.json")

	// First life: run one simulate job and one cache hit against it.
	s1, ts1 := newTestServer(t, Config{Journal: dir})
	first := waitTerminal(t, ts1, postJob(t, ts1, Request{Scenario: data}).ID)
	if first.State != StateDone {
		t.Fatalf("first job: %s (%s)", first.State, first.Error)
	}
	hit := postJob(t, ts1, Request{Scenario: data})
	if !hit.CacheHit {
		t.Fatalf("second submission missed the cache: %+v", hit)
	}
	report1, code := getBytes(t, ts1, "/v1/jobs/"+first.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report: %d", code)
	}
	ts1.Close()
	s1.Close()

	// Second life: both jobs restored, bytes identical, IDs not reused.
	s2, ts2 := newTestServer(t, Config{Journal: dir})
	got := getJob(t, ts2, first.ID)
	if got.State != StateDone || got.Hash != first.Hash {
		t.Fatalf("restored job: %+v", got)
	}
	report2, code := getBytes(t, ts2, "/v1/jobs/"+first.ID+"/report")
	if code != http.StatusOK || !bytes.Equal(report1, report2) {
		t.Errorf("restored report differs (status %d)", code)
	}
	trace, code := getBytes(t, ts2, "/v1/jobs/"+first.ID+"/trace")
	if code != http.StatusOK || !json.Valid(trace) {
		t.Errorf("restored trace: status %d", code)
	}
	// The cache-hit job relinks its payload through the restored cache.
	hitReport, code := getBytes(t, ts2, "/v1/jobs/"+hit.ID+"/report")
	if code != http.StatusOK || !bytes.Equal(report1, hitReport) {
		t.Errorf("restored cache-hit report differs (status %d)", code)
	}
	// A fresh submission of the same scenario hits the restored cache.
	again := postJob(t, ts2, Request{Scenario: data})
	if !again.CacheHit {
		t.Error("restored cache did not serve a resubmission")
	}
	if again.ID <= hit.ID {
		t.Errorf("job IDs reused across restart: %s after %s", again.ID, hit.ID)
	}
	// The restored job's stream still ends with a terminal event.
	stream, code := getBytes(t, ts2, "/v1/jobs/"+first.ID+"/stream")
	if code != http.StatusOK {
		t.Fatalf("/stream: %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(stream)), "\n")
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || !last.State.terminal() {
		t.Errorf("restored stream did not end terminal: %v %+v", err, last)
	}
	_ = s2
}

func TestJournalReenqueuesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	data := readScenario(t, "figure6.json")

	// Hand-write a journal holding a submit with no end record — exactly what
	// a SIGKILL mid-run leaves behind.
	var buf bytes.Buffer
	rec := journalRecord{Op: "submit", ID: "j000007", Time: time.Now(),
		Kind: KindSimulate, Req: &Request{Kind: KindSimulate, Scenario: data}}
	var err error
	if _, rec.Hash, err = scenario.Canonicalize(data); err != nil {
		t.Fatal(err)
	}
	if err := encodeRecord(&buf, &rec); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Journal: dir})
	done := waitTerminal(t, ts, "j000007")
	if done.State != StateDone {
		t.Fatalf("re-enqueued job: %s (%s)", done.State, done.Error)
	}
	// The next fresh submission must not collide with the recovered ID space.
	next := postJob(t, ts, Request{Scenario: data})
	if next.ID != "j000008" {
		t.Errorf("ID sequence after recovery = %s, want j000008", next.ID)
	}
}

func TestJournalCancelRecordHonoredOnReplay(t *testing.T) {
	dir := t.TempDir()
	data := readScenario(t, "figure6.json")

	var buf bytes.Buffer
	rec := journalRecord{Op: "submit", ID: "j000001", Time: time.Now(),
		Kind: KindSimulate, Req: &Request{Kind: KindSimulate, Scenario: data}}
	var err error
	if _, rec.Hash, err = scenario.Canonicalize(data); err != nil {
		t.Fatal(err)
	}
	if err := encodeRecord(&buf, &rec); err != nil {
		t.Fatal(err)
	}
	if err := encodeRecord(&buf, &journalRecord{Op: "cancel", ID: "j000001", Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Journal: dir})
	job := getJob(t, ts, "j000001")
	if job.State != StateCanceled {
		t.Fatalf("job with journaled cancel replayed as %s, want canceled", job.State)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	data := readScenario(t, "figure6.json")

	s1, ts1 := newTestServer(t, Config{Journal: dir})
	job := waitTerminal(t, ts1, postJob(t, ts1, Request{Scenario: data}).ID)
	ts1.Close()
	s1.Close()

	// Simulate a crash mid-append: a valid prefix plus half a record.
	path := filepath.Join(dir, journalFile)
	if err := os.WriteFile(path, append(mustRead(t, path), []byte("deadbeef {\"op\":\"sub")...), 0o644); err != nil {
		t.Fatal(err)
	}
	before := len(journalLines(t, dir))

	s2, ts2 := newTestServer(t, Config{Journal: dir})
	got := getJob(t, ts2, job.ID)
	if got.State != StateDone {
		t.Fatalf("torn tail lost the valid prefix: job is %s", got.State)
	}
	// The torn line must be gone from disk so appends cannot corrupt.
	if after := len(journalLines(t, dir)); after >= before {
		t.Errorf("torn tail not truncated: %d lines, had %d", after, before)
	}
	// And a corrupt CRC mid-file stops replay at the corruption, not before.
	ts2.Close()
	s2.Close()

	lines := journalLines(t, dir)
	lines[0] = "00000000" + lines[0][8:] // break the first record's CRC
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServer(t, Config{Journal: dir})
	if _, code := getBytes(t, ts3, "/v1/jobs/"+job.ID); code != http.StatusNotFound {
		t.Errorf("job behind a corrupt record survived replay: status %d", code)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	data := readScenario(t, "figure6.json")

	s, ts := newTestServer(t, Config{Journal: dir, CompactEvery: 4})
	var last string
	for i := 0; i < 6; i++ {
		last = waitTerminal(t, ts, postJob(t, ts, Request{Scenario: data}).ID).ID
	}
	s.CompactJournal()
	lines := journalLines(t, dir)
	// Snapshot form: one submit plus one end record per job, nothing else.
	s.mu.Lock()
	want := len(s.order) + s.terminal
	s.mu.Unlock()
	if len(lines) != want {
		t.Errorf("compacted journal holds %d records, want %d", len(lines), want)
	}
	// Everything still servable after compaction + restart.
	ts.Close()
	s.Close()
	_, ts2 := newTestServer(t, Config{Journal: dir})
	if job := getJob(t, ts2, last); job.State != StateDone {
		t.Errorf("job %s after compacted restart: %s", last, job.State)
	}
}

func TestQueueFullResponseCarriesBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 1})
	blocker := postJob(t, ts, slowSweepRequest(t))
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, blocker.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	postJob(t, ts, slowSweepRequest(t)) // fills the depth-1 queue

	body, _ := json.Marshal(slowSweepRequest(t))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 carries no Retry-After header")
	}
	var info struct {
		Error           string `json:"error"`
		QueueDepth      *int   `json:"queueDepth"`
		EstimatedWaitMs *int64 `json:"estimatedWaitMs"`
		RetryAfterSec   int    `json:"retryAfterSec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Error == "" || info.QueueDepth == nil || info.EstimatedWaitMs == nil || info.RetryAfterSec < 1 {
		t.Errorf("503 body incomplete: %+v", info)
	}
	if *info.QueueDepth != 1 {
		t.Errorf("queueDepth = %d, want 1", *info.QueueDepth)
	}
}

func TestQueuePositionReporting(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	blocker := postJob(t, ts, slowSweepRequest(t))
	data := readScenario(t, "figure6.json")
	q1 := postJob(t, ts, Request{Scenario: data})
	q2 := postJob(t, ts, Request{Scenario: data, Options: optionsVariant(1)})

	// Wait until the blocker is actually running so positions are stable.
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, blocker.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	g1, g2 := getJob(t, ts, q1.ID), getJob(t, ts, q2.ID)
	if g1.QueuePosition == nil || *g1.QueuePosition != 0 {
		t.Errorf("first queued job position = %v, want 0", g1.QueuePosition)
	}
	if g2.QueuePosition == nil || *g2.QueuePosition != 1 {
		t.Errorf("second queued job position = %v, want 1", g2.QueuePosition)
	}

	// Canceling the job ahead promotes the one behind it.
	s.Cancel(q1.ID)
	g2 = getJob(t, ts, q2.ID)
	if g2.QueuePosition == nil || *g2.QueuePosition != 0 {
		t.Errorf("position after cancel ahead = %v, want 0", g2.QueuePosition)
	}
	s.Cancel(blocker.ID)
	waitTerminal(t, ts, blocker.ID)
	done := waitTerminal(t, ts, q2.ID)
	if done.QueuePosition != nil {
		t.Error("terminal job still reports a queue position")
	}
}

// optionsVariant returns Options that differ per i, to defeat the cache.
func optionsVariant(i int) (o runner.Options) {
	o.Width = 100 + i
	o.Timeline = true
	return o
}
