// Package server is the simulation-as-a-service core behind the rtossimd
// daemon: a durable in-memory job queue, a sharded worker pool (reusing
// internal/batch's pool), a content-hash LRU result cache, and an HTTP/JSON
// API with streaming progress. It is a thin shell around internal/runner —
// every job runs through the same pipeline the rtossim CLI uses, so the
// report and trace bytes a job serves are identical to the CLI's output for
// the same scenario and options.
//
// Jobs are routed to a worker shard by the scenario's canonical content hash
// (internal/scenario.Hash): resubmissions of a semantically identical
// scenario — any field order, any duration spelling — land on the same
// shard, and simulate jobs whose (hash, options) pair is cached complete
// without running a simulation at all.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Config parameterizes a Server. The zero value picks sensible defaults.
type Config struct {
	// Shards is the number of worker queues (default: GOMAXPROCS, capped at 8).
	Shards int
	// QueueDepth bounds each shard's queue; submissions beyond it are
	// rejected with 503 (default 256).
	QueueDepth int
	// CacheEntries bounds the result cache (default 128; 0 uses the
	// default, negative disables caching).
	CacheEntries int
	// Journal, when non-empty, names a directory holding the crash-safe job
	// journal: submissions, cancellations and terminal states are appended
	// (CRC-tagged NDJSON, fsynced) and replayed on the next start — finished
	// results restored, unfinished jobs re-enqueued. Empty disables
	// durability.
	Journal string
	// CompactEvery bounds how often the journal compaction trigger is
	// evaluated: after this many appended records the journal is rewritten
	// as a snapshot once terminal records dominate (default 256).
	CompactEvery int
	// Logf receives operational log lines (journal replay decisions,
	// append failures). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 128
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 256
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server owns the job table, the shard queues and the result cache. One
// mutex guards all of them plus the metrics registry (the registry is
// allocation-free but not itself thread-safe); the heavy work — running
// simulations — happens outside the lock.
type Server struct {
	cfg Config

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // job IDs in submission order
	seq   int
	cache *resultCache

	queues []chan *Job
	// waiting mirrors each shard queue's still-queued jobs in order; it
	// backs the queuePosition field in job status and stream events.
	waiting [][]*Job
	// busy marks shards currently executing a job (feeds the wait estimate).
	busy []bool
	est  *shardEstimator

	jnl       *journal
	terminal  int  // jobs in a terminal state (compaction trigger)
	appended  int  // journal records appended since the last compaction check
	replaying bool // suppresses compaction until the job table is rebuilt

	reg *metrics.Registry
	m   struct {
		submitted   *metrics.Counter
		completed   map[JobState]*metrics.Counter
		queued      *metrics.Gauge
		running     *metrics.Gauge
		shardDepth  []*metrics.Gauge
		workersBusy *metrics.Gauge
		workers     *metrics.Gauge
		cacheHits   *metrics.Counter
		cacheMiss   *metrics.Counter
		cacheSize   *metrics.Gauge
		cacheEvict  *metrics.Counter
		simulations map[JobKind]*metrics.Counter
		wallMS      *metrics.Histogram
	}

	ctx         context.Context
	cancel      context.CancelFunc
	workersDone chan struct{}
}

// New builds a Server, replays its journal when one is configured, and
// starts its worker pool. The only error source is the journal (open,
// replay, truncate); a journal-less server cannot fail.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		jobs:        make(map[string]*Job),
		cache:       newResultCache(cfg.CacheEntries),
		queues:      make([]chan *Job, cfg.Shards),
		waiting:     make([][]*Job, cfg.Shards),
		busy:        make([]bool, cfg.Shards),
		est:         newShardEstimator(cfg.Shards),
		reg:         metrics.NewRegistry(),
		workersDone: make(chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := range s.queues {
		s.queues[i] = make(chan *Job, cfg.QueueDepth)
	}

	// Create every metric up front: Registry lookups mutate its maps, so
	// after this point only the pre-built handles are touched (under s.mu).
	s.m.submitted = s.reg.Counter("rtossimd_jobs_submitted_total", "jobs accepted by the queue")
	s.m.completed = map[JobState]*metrics.Counter{}
	for _, st := range []JobState{StateDone, StateFailed, StateCanceled} {
		s.m.completed[st] = s.reg.Counter("rtossimd_jobs_completed_total",
			"jobs finished, by terminal state", metrics.L("state", string(st)))
	}
	s.m.queued = s.reg.Gauge("rtossimd_jobs_queued", "jobs waiting in shard queues")
	s.m.running = s.reg.Gauge("rtossimd_jobs_running", "jobs currently executing")
	s.m.shardDepth = make([]*metrics.Gauge, cfg.Shards)
	for i := range s.m.shardDepth {
		s.m.shardDepth[i] = s.reg.Gauge("rtossimd_queue_depth",
			"queued jobs per worker shard", metrics.L("shard", strconv.Itoa(i)))
	}
	s.m.workersBusy = s.reg.Gauge("rtossimd_workers_busy", "workers executing a job")
	s.m.workers = s.reg.Gauge("rtossimd_workers", "worker pool size")
	s.m.workers.Set(int64(cfg.Shards))
	s.m.cacheHits = s.reg.Counter("rtossimd_cache_hits_total", "simulate jobs served from the result cache")
	s.m.cacheMiss = s.reg.Counter("rtossimd_cache_misses_total", "simulate jobs that had to run")
	s.m.cacheSize = s.reg.Gauge("rtossimd_cache_entries", "results held in the cache")
	s.m.cacheEvict = s.reg.Counter("rtossimd_cache_evictions_total", "results evicted from the cache")
	s.m.simulations = map[JobKind]*metrics.Counter{}
	for _, k := range []JobKind{KindSimulate, KindSweep, KindExplore} {
		s.m.simulations[k] = s.reg.Counter("rtossimd_simulations_total",
			"simulation pipeline executions (cache hits run none; sweeps count per executed variant)",
			metrics.L("kind", string(k)))
	}
	s.m.wallMS = s.reg.Histogram("rtossimd_job_wall_ms", "job wall time in milliseconds",
		[]int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000})

	// Replay the journal before any worker can observe the queues: finished
	// results come back into the job table and cache, unfinished jobs are
	// re-enqueued to run again.
	if cfg.Journal != "" {
		jnl, recs, err := openJournal(cfg.Journal, cfg.Logf)
		if err != nil {
			s.cancel()
			close(s.workersDone)
			return nil, err
		}
		s.jnl = jnl
		s.mu.Lock()
		s.replaying = true
		s.replayLocked(recs)
		s.replaying = false
		// Startup compaction: replay already separated the wheat; rewrite
		// whenever the file holds more than a snapshot would.
		if s.jnl.records > len(s.order)+s.terminal {
			s.compactLocked()
		}
		s.mu.Unlock()
	}

	// The worker pool is internal/batch's: one pool item per shard, each
	// item a shard loop that drains its queue until shutdown.
	go func() {
		defer close(s.workersDone)
		batch.ForEach(cfg.Shards, cfg.Shards, s.shardLoop)
	}()
	return s, nil
}

// Close stops the worker pool and cancels every job context. In-flight
// single simulations run to completion in their worker before the pool
// exits; sweeps stop at the next variant boundary.
func (s *Server) Close() {
	s.cancel()
	<-s.workersDone
	s.mu.Lock()
	s.jnl.close()
	s.jnl = nil
	s.mu.Unlock()
}

// buildJob validates a request and builds the (not yet registered) job:
// scenario parse, canonical hash, per-kind validation, cache key and shard
// routing. Shared verbatim between Submit and journal replay so a replayed
// job revalidates exactly like a fresh one.
func (s *Server) buildJob(req Request) (*Job, error) {
	kind := req.Kind
	if kind == "" {
		kind = KindSimulate
	}
	if len(req.Scenario) == 0 {
		return nil, fmt.Errorf("request has no scenario document")
	}

	job := &Job{Kind: kind, State: StateQueued, Created: time.Now(), req: req,
		scenario: append([]byte(nil), req.Scenario...)}
	job.req.Kind = kind

	var err error
	if _, job.Hash, err = scenario.Canonicalize(job.scenario); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	switch kind {
	case KindSimulate:
		// Default artifacts so the trace/metrics endpoints work; an explicit
		// empty list opts out. Normalize before building the cache key so
		// spelled-out defaults hit the same entry.
		if job.req.Options.Artifacts == nil {
			job.req.Options.Artifacts = []string{"perfetto", "metrics"}
		}
		if _, err := runner.Prepare(job.scenario, job.req.Options); err != nil {
			return nil, err
		}
		optJSON, err := json.Marshal(job.req.Options)
		if err != nil {
			return nil, err
		}
		job.cacheKey = job.Hash + "\x00" + string(optJSON)
	case KindSweep:
		if len(req.Sweep) == 0 {
			return nil, fmt.Errorf("sweep job has no sweep spec")
		}
		spec, err := batch.ParseSpec(req.Sweep)
		if err != nil {
			return nil, fmt.Errorf("sweep spec: %w", err)
		}
		if _, err := spec.Expand(); err != nil {
			return nil, fmt.Errorf("sweep spec: %w", err)
		}
		job.spec = spec
	case KindExplore:
		// The scenario parse above is the full validation; explore bounds
		// default inside the engine.
	default:
		return nil, fmt.Errorf("unknown job kind %q (want simulate, sweep or explore)", kind)
	}

	job.Shard = shardOf(job.Hash, s.cfg.Shards)
	job.ctx, job.cancel = context.WithCancel(s.ctx)
	return job, nil
}

// Submit validates a request, routes it to a shard by content hash, and
// returns the job. Cache hits complete synchronously. The returned error is
// a client error (bad request); queue overflow returns a *QueueFullError
// (matching ErrQueueFull) carrying the shard's depth and estimated wait.
func (s *Server) Submit(req Request) (*Job, error) {
	job, err := s.buildJob(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Reserve the queue slot before registering or journaling anything: a
	// rejected submission must leave no trace.
	var hit any
	var ok bool
	if job.cacheKey != "" {
		hit, ok = s.cache.get(job.cacheKey)
	}
	if !ok {
		select {
		case s.queues[job.Shard] <- job:
		default:
			depth := len(s.waiting[job.Shard])
			ahead := depth
			if s.busy[job.Shard] {
				ahead++
			}
			return nil, &QueueFullError{
				Shard:         job.Shard,
				Depth:         depth,
				EstimatedWait: s.est.wait(job.Shard, ahead),
			}
		}
	}

	s.seq++
	job.ID = fmt.Sprintf("j%06d", s.seq)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.m.submitted.Inc()
	s.journalLocked(&journalRecord{Op: "submit", ID: job.ID, Time: job.Created,
		Kind: job.Kind, Hash: job.Hash, Req: &job.req})

	// Cache check (simulate only): a hit completes the job immediately, on
	// the caller's goroutine, without entering a queue.
	if ok {
		res := hit.(*runner.Result)
		job.CacheHit = true
		job.Started = time.Now()
		job.Result = res
		s.m.cacheHits.Inc()
		s.finishLocked(job, StateDone, "served from cache")
		return job, nil
	}
	if job.cacheKey != "" {
		s.m.cacheMiss.Inc()
	}

	s.m.queued.Add(1)
	s.m.shardDepth[job.Shard].Add(1)
	pos := len(s.waiting[job.Shard])
	s.waiting[job.Shard] = append(s.waiting[job.Shard], job)
	job.QueuePosition = &pos
	s.pushEventLocked(job, Event{State: StateQueued, QueuePosition: &pos})
	return job, nil
}

// ErrQueueFull matches the error Submit returns when the job's shard queue
// is at capacity (use errors.Is; errors.As with *QueueFullError recovers
// the depth and wait estimate).
var ErrQueueFull = fmt.Errorf("shard queue is full")

// QueueFullError is the backpressure signal: which shard is saturated, how
// many jobs are queued on it, and — from the rolling per-shard service-time
// estimate — how long a retry is expected to wait for a slot.
type QueueFullError struct {
	Shard int
	Depth int
	// EstimatedWait is zero when the shard has no completed-job sample yet.
	EstimatedWait time.Duration
}

func (e *QueueFullError) Error() string {
	if e.EstimatedWait > 0 {
		return fmt.Sprintf("shard %d queue is full (%d queued, estimated wait %v)",
			e.Shard, e.Depth, e.EstimatedWait.Round(time.Millisecond))
	}
	return fmt.Sprintf("shard %d queue is full (%d queued)", e.Shard, e.Depth)
}

// Is makes errors.Is(err, ErrQueueFull) hold for the richer error.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// shardOf routes a canonical content hash to a shard: the hash is uniform,
// so its first 8 hex digits modulo the shard count balance the pool while
// keeping identical scenarios on one shard.
func shardOf(hash string, shards int) int {
	if len(hash) < 8 || shards <= 1 {
		return 0
	}
	v, err := strconv.ParseUint(hash[:8], 16, 64)
	if err != nil {
		return 0
	}
	return int(v % uint64(shards))
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: queued jobs complete as canceled without running,
// running sweeps stop at the next variant boundary, and a running single
// simulation finishes its run but the job still lands in state canceled.
// It reports whether the job exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	if j.State.terminal() {
		return true
	}
	j.cancel()
	if j.State == StateQueued {
		// The worker will skip it when dequeued; finish it now so pollers
		// and streams see the terminal state immediately.
		s.unqueueLocked(j)
		s.finishLocked(j, StateCanceled, "canceled while queued")
	} else {
		// Running: journal the request so a crash before the terminal
		// record replays this job as canceled instead of re-running it.
		s.journalLocked(&journalRecord{Op: "cancel", ID: j.ID, Time: time.Now()})
	}
	return true
}

// shardLoop is one worker: it drains its shard queue until shutdown.
func (s *Server) shardLoop(shard int) {
	for {
		select {
		case <-s.ctx.Done():
			return
		case job := <-s.queues[shard]:
			s.runJob(job)
		}
	}
}

// runJob executes one dequeued job through internal/runner.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	s.m.queued.Add(-1)
	s.m.shardDepth[job.Shard].Add(-1)
	if job.State.terminal() { // canceled while queued
		s.mu.Unlock()
		return
	}
	s.unqueueLocked(job)
	job.State = StateRunning
	job.Started = time.Now()
	s.busy[job.Shard] = true
	s.m.running.Add(1)
	s.m.workersBusy.Add(1)
	if job.Kind != KindSweep {
		// Sweeps count simulations per executed variant, in the variant-cache
		// lookup hook, so cached variants run (and count) nothing.
		s.m.simulations[job.Kind].Inc()
	}
	s.pushEventLocked(job, Event{State: StateRunning})
	progress := func(done, total int) {
		s.mu.Lock()
		s.pushEventLocked(job, Event{State: StateRunning, Done: done, Total: total})
		s.mu.Unlock()
	}
	s.mu.Unlock()

	var (
		result  *runner.Result
		sweep   *runner.SweepResult
		explore *runner.ExploreResult
		err     error
	)
	switch job.Kind {
	case KindSimulate:
		result, err = runner.Run(job.scenario, job.req.Options, job.Hash[:12])
	case KindSweep:
		sweep, err = runner.Sweep(job.spec, job.scenario, runner.SweepOptions{
			Workers:  job.spec.Workers,
			Progress: progress,
			Context:  job.ctx,
			Lookup:   s.sweepLookup(job),
			Store:    s.sweepStore(job),
		})
	case KindExplore:
		explore, err = runner.Explore(job.scenario, job.req.Explore, job.Hash[:12])
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.busy[job.Shard] = false
	s.m.running.Add(-1)
	s.m.workersBusy.Add(-1)
	s.m.wallMS.Observe(time.Since(job.Started).Milliseconds())
	s.est.observe(job.Shard, time.Since(job.Started))
	switch {
	case err != nil:
		job.Error = err.Error()
		s.finishLocked(job, StateFailed, job.Error)
	case job.ctx.Err() != nil || (sweep != nil && sweep.Canceled):
		job.Result, job.sweep, job.explore = result, sweep, explore
		s.fillSummariesLocked(job)
		s.finishLocked(job, StateCanceled, "canceled")
	default:
		job.Result, job.sweep, job.explore = result, sweep, explore
		s.fillSummariesLocked(job)
		if job.cacheKey != "" && result != nil && result.SimError == "" {
			if s.cache.put(job.cacheKey, result) {
				s.m.cacheEvict.Inc()
			}
			s.m.cacheSize.Set(int64(s.cache.len()))
		}
		s.finishLocked(job, StateDone, "")
	}
}

func (s *Server) fillSummariesLocked(job *Job) {
	if job.sweep != nil {
		sum := job.sweep.Summary
		job.SweepSummary = &sum
	}
	if job.explore != nil {
		sum := job.explore.Summary
		job.ExploreSummary = &sum
		job.Violations = len(sum.Violations)
	}
}

// finishLocked moves a job to a terminal state, emits the final event,
// journals the outcome, and closes every stream subscription. Caller holds
// s.mu.
func (s *Server) finishLocked(job *Job, state JobState, msg string) {
	job.State = state
	job.Finished = time.Now()
	job.QueuePosition = nil
	job.cancel()
	s.terminal++
	s.m.completed[state].Inc()
	s.pushEventLocked(job, Event{State: state, Message: msg})
	for _, ch := range job.subs {
		close(ch)
	}
	job.subs = nil
	rec := endRecord(job)
	s.journalLocked(&rec)
	s.maybeCompactLocked()
}

// journalLocked appends one record, logging (not failing) on error: a
// broken disk degrades durability, it must not take serving down with it.
// Caller holds s.mu.
func (s *Server) journalLocked(rec *journalRecord) {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.append(rec); err != nil {
		s.cfg.Logf("%v", err)
	}
	s.appended++
}

// endRecord renders a job's terminal state as its journal record.
func endRecord(job *Job) journalRecord {
	return journalRecord{Op: "end", ID: job.ID, Time: job.Finished,
		State: job.State, Started: job.Started, Error: job.Error,
		CacheHit: job.CacheHit, Out: job.outputs()}
}

// unqueueLocked removes a job from its shard's waiting list and renumbers
// the jobs behind it, emitting a position event for each. Caller holds s.mu.
func (s *Server) unqueueLocked(job *Job) {
	w := s.waiting[job.Shard]
	for i, q := range w {
		if q != job {
			continue
		}
		copy(w[i:], w[i+1:])
		w = w[:len(w)-1]
		s.waiting[job.Shard] = w
		for k := i; k < len(w); k++ {
			pos := k
			w[k].QueuePosition = &pos
			s.pushEventLocked(w[k], Event{State: StateQueued, QueuePosition: &pos})
		}
		break
	}
	job.QueuePosition = nil
}

// replayLocked rebuilds the job table from journal records: terminal jobs
// come back with their served bytes (done simulate results re-enter the
// cache), jobs with only a cancel request finish as canceled, and everything
// else is re-enqueued to run again. Invalid records — failed revalidation,
// hash mismatch — are logged and dropped. Caller holds s.mu; workers are not
// running yet.
func (s *Server) replayLocked(recs []journalRecord) {
	type slot struct {
		job      *Job
		end      *journalRecord
		canceled bool
	}
	slots := map[string]*slot{}
	var order []string
	for i := range recs {
		rec := &recs[i]
		switch rec.Op {
		case "submit":
			if rec.Req == nil || slots[rec.ID] != nil {
				continue
			}
			job, err := s.buildJob(*rec.Req)
			if err != nil {
				s.cfg.Logf("journal: dropping job %s: %v", rec.ID, err)
				continue
			}
			if job.Hash != rec.Hash {
				s.cfg.Logf("journal: dropping job %s: scenario hash mismatch (journaled %.12s, recomputed %.12s)",
					rec.ID, rec.Hash, job.Hash)
				continue
			}
			job.ID = rec.ID
			job.Created = rec.Time
			if n := idSeq(rec.ID); n > s.seq {
				s.seq = n
			}
			slots[rec.ID] = &slot{job: job}
			order = append(order, rec.ID)
		case "cancel":
			if sl := slots[rec.ID]; sl != nil {
				sl.canceled = true
			}
		case "end":
			if sl := slots[rec.ID]; sl != nil && sl.end == nil {
				sl.end = rec
			}
		}
	}

	requeued, restored := 0, 0
	for _, id := range order {
		sl := slots[id]
		job := sl.job
		s.jobs[id] = job
		s.order = append(s.order, id)
		switch {
		case sl.end != nil:
			end := sl.end
			job.State = end.State
			job.Started = end.Started
			job.Finished = end.Time
			job.Error = end.Error
			job.CacheHit = end.CacheHit
			job.cancel()
			s.terminal++
			job.restoreOutputs(end.Out)
			if job.State == StateDone && !job.CacheHit && job.cacheKey != "" &&
				job.Result != nil && job.Result.SimError == "" && job.Result.Report != nil {
				s.cache.put(job.cacheKey, job.Result)
			}
			if job.CacheHit && job.cacheKey != "" && (job.Result == nil || job.Result.Report == nil) {
				// Cache-hit jobs journal only result metadata; relink the
				// payload from the original job's cached result when it is
				// still resident.
				if v, ok := s.cache.get(job.cacheKey); ok {
					job.Result = v.(*runner.Result)
				}
			}
			// A minimal event log so streams of restored jobs still end
			// with the terminal transition.
			job.events = []Event{
				{Seq: 0, Time: job.Created, State: StateQueued},
				{Seq: 1, Time: job.Finished, State: job.State, Message: "restored from journal"},
			}
			restored++
		case sl.canceled:
			// Cancel was requested but the daemon died before the terminal
			// record: honor the cancellation rather than re-running.
			s.finishLocked(job, StateCanceled, "canceled before shutdown")
		default:
			select {
			case s.queues[job.Shard] <- job:
				s.m.queued.Add(1)
				s.m.shardDepth[job.Shard].Add(1)
				pos := len(s.waiting[job.Shard])
				s.waiting[job.Shard] = append(s.waiting[job.Shard], job)
				job.QueuePosition = &pos
				s.pushEventLocked(job, Event{State: StateQueued, QueuePosition: &pos})
				requeued++
			default:
				s.finishLocked(job, StateFailed, "recovered job exceeds queue capacity")
			}
		}
	}
	s.m.cacheSize.Set(int64(s.cache.len()))
	if len(order) > 0 {
		s.cfg.Logf("journal: replayed %d job(s): %d finished, %d re-enqueued", len(order), restored, requeued)
	}
}

// idSeq parses the numeric suffix of a job ID ("j000042" -> 42).
func idSeq(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

// maybeCompactLocked rewrites the journal as a snapshot once terminal
// records dominate live jobs and the file holds more records than the
// snapshot would — i.e. once append history (cancel records, superseded
// restarts, rejected records) is just dead weight. Caller holds s.mu.
func (s *Server) maybeCompactLocked() {
	if s.jnl == nil || s.replaying || s.appended < s.cfg.CompactEvery {
		return
	}
	s.appended = 0
	live := len(s.order) - s.terminal
	if s.terminal < live || s.jnl.records <= len(s.order)+s.terminal {
		return
	}
	s.compactLocked()
}

// compactLocked rewrites the journal from the in-memory job table: one
// submit record per job plus one terminal record for finished ones. Caller
// holds s.mu.
func (s *Server) compactLocked() {
	if s.jnl == nil {
		return
	}
	recs := make([]journalRecord, 0, len(s.order)+s.terminal)
	for _, id := range s.order {
		job := s.jobs[id]
		recs = append(recs, journalRecord{Op: "submit", ID: job.ID, Time: job.Created,
			Kind: job.Kind, Hash: job.Hash, Req: &job.req})
		if job.State.terminal() {
			recs = append(recs, endRecord(job))
		}
	}
	before := s.jnl.records
	if err := s.jnl.rewrite(recs); err != nil {
		s.cfg.Logf("%v", err)
		return
	}
	s.cfg.Logf("journal: compacted %d record(s) to %d", before, len(recs))
}

// CompactJournal forces a compaction pass; a no-op without a journal.
func (s *Server) CompactJournal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appended = 0
	s.compactLocked()
}

// pushEventLocked appends an event to the job log and fans it out to
// subscribers. Caller holds s.mu. A slow stream reader loses intermediate
// progress events rather than blocking the worker.
func (s *Server) pushEventLocked(job *Job, ev Event) {
	ev.Seq = len(job.events)
	ev.Time = time.Now()
	job.events = append(job.events, ev)
	for _, ch := range job.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a stream reader: it returns the events so far and a
// channel for subsequent ones (nil when the job is already terminal).
func (s *Server) subscribe(job *Job) ([]Event, chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	past := append([]Event(nil), job.events...)
	if job.State.terminal() {
		return past, nil
	}
	ch := make(chan Event, 64)
	job.subs = append(job.subs, ch)
	return past, ch
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Metrics renders the registry under the server lock (the registry itself
// is not thread-safe).
func (s *Server) writeMetrics(write func(*metrics.Registry) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return write(s.reg)
}
