// Package server is the simulation-as-a-service core behind the rtossimd
// daemon: a durable in-memory job queue, a sharded worker pool (reusing
// internal/batch's pool), a content-hash LRU result cache, and an HTTP/JSON
// API with streaming progress. It is a thin shell around internal/runner —
// every job runs through the same pipeline the rtossim CLI uses, so the
// report and trace bytes a job serves are identical to the CLI's output for
// the same scenario and options.
//
// Jobs are routed to a worker shard by the scenario's canonical content hash
// (internal/scenario.Hash): resubmissions of a semantically identical
// scenario — any field order, any duration spelling — land on the same
// shard, and simulate jobs whose (hash, options) pair is cached complete
// without running a simulation at all.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Config parameterizes a Server. The zero value picks sensible defaults.
type Config struct {
	// Shards is the number of worker queues (default: GOMAXPROCS, capped at 8).
	Shards int
	// QueueDepth bounds each shard's queue; submissions beyond it are
	// rejected with 503 (default 256).
	QueueDepth int
	// CacheEntries bounds the result cache (default 128; 0 uses the
	// default, negative disables caching).
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 128
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	return c
}

// Server owns the job table, the shard queues and the result cache. One
// mutex guards all of them plus the metrics registry (the registry is
// allocation-free but not itself thread-safe); the heavy work — running
// simulations — happens outside the lock.
type Server struct {
	cfg Config

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // job IDs in submission order
	seq   int
	cache *resultCache

	queues []chan *Job

	reg *metrics.Registry
	m   struct {
		submitted   *metrics.Counter
		completed   map[JobState]*metrics.Counter
		queued      *metrics.Gauge
		running     *metrics.Gauge
		shardDepth  []*metrics.Gauge
		workersBusy *metrics.Gauge
		workers     *metrics.Gauge
		cacheHits   *metrics.Counter
		cacheMiss   *metrics.Counter
		cacheSize   *metrics.Gauge
		cacheEvict  *metrics.Counter
		simulations map[JobKind]*metrics.Counter
		wallMS      *metrics.Histogram
	}

	ctx         context.Context
	cancel      context.CancelFunc
	workersDone chan struct{}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		jobs:        make(map[string]*Job),
		cache:       newResultCache(cfg.CacheEntries),
		queues:      make([]chan *Job, cfg.Shards),
		reg:         metrics.NewRegistry(),
		workersDone: make(chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := range s.queues {
		s.queues[i] = make(chan *Job, cfg.QueueDepth)
	}

	// Create every metric up front: Registry lookups mutate its maps, so
	// after this point only the pre-built handles are touched (under s.mu).
	s.m.submitted = s.reg.Counter("rtossimd_jobs_submitted_total", "jobs accepted by the queue")
	s.m.completed = map[JobState]*metrics.Counter{}
	for _, st := range []JobState{StateDone, StateFailed, StateCanceled} {
		s.m.completed[st] = s.reg.Counter("rtossimd_jobs_completed_total",
			"jobs finished, by terminal state", metrics.L("state", string(st)))
	}
	s.m.queued = s.reg.Gauge("rtossimd_jobs_queued", "jobs waiting in shard queues")
	s.m.running = s.reg.Gauge("rtossimd_jobs_running", "jobs currently executing")
	s.m.shardDepth = make([]*metrics.Gauge, cfg.Shards)
	for i := range s.m.shardDepth {
		s.m.shardDepth[i] = s.reg.Gauge("rtossimd_queue_depth",
			"queued jobs per worker shard", metrics.L("shard", strconv.Itoa(i)))
	}
	s.m.workersBusy = s.reg.Gauge("rtossimd_workers_busy", "workers executing a job")
	s.m.workers = s.reg.Gauge("rtossimd_workers", "worker pool size")
	s.m.workers.Set(int64(cfg.Shards))
	s.m.cacheHits = s.reg.Counter("rtossimd_cache_hits_total", "simulate jobs served from the result cache")
	s.m.cacheMiss = s.reg.Counter("rtossimd_cache_misses_total", "simulate jobs that had to run")
	s.m.cacheSize = s.reg.Gauge("rtossimd_cache_entries", "results held in the cache")
	s.m.cacheEvict = s.reg.Counter("rtossimd_cache_evictions_total", "results evicted from the cache")
	s.m.simulations = map[JobKind]*metrics.Counter{}
	for _, k := range []JobKind{KindSimulate, KindSweep, KindExplore} {
		s.m.simulations[k] = s.reg.Counter("rtossimd_simulations_total",
			"simulation pipeline executions (cache hits run none)", metrics.L("kind", string(k)))
	}
	s.m.wallMS = s.reg.Histogram("rtossimd_job_wall_ms", "job wall time in milliseconds",
		[]int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000})

	// The worker pool is internal/batch's: one pool item per shard, each
	// item a shard loop that drains its queue until shutdown.
	go func() {
		defer close(s.workersDone)
		batch.ForEach(cfg.Shards, cfg.Shards, s.shardLoop)
	}()
	return s
}

// Close stops the worker pool and cancels every job context. In-flight
// single simulations run to completion in their worker before the pool
// exits; sweeps stop at the next variant boundary.
func (s *Server) Close() {
	s.cancel()
	<-s.workersDone
}

// Submit validates a request, routes it to a shard by content hash, and
// returns the job. Cache hits complete synchronously. The returned error is
// a client error (bad request); queue overflow returns ErrQueueFull.
func (s *Server) Submit(req Request) (*Job, error) {
	kind := req.Kind
	if kind == "" {
		kind = KindSimulate
	}
	if len(req.Scenario) == 0 {
		return nil, fmt.Errorf("request has no scenario document")
	}

	job := &Job{Kind: kind, State: StateQueued, Created: time.Now(), req: req,
		scenario: append([]byte(nil), req.Scenario...)}

	desc, err := scenario.Parse(job.scenario)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	job.Hash, err = desc.Hash()
	if err != nil {
		return nil, err
	}

	switch kind {
	case KindSimulate:
		// Default artifacts so the trace/metrics endpoints work; an explicit
		// empty list opts out. Normalize before building the cache key so
		// spelled-out defaults hit the same entry.
		if job.req.Options.Artifacts == nil {
			job.req.Options.Artifacts = []string{"perfetto", "metrics"}
		}
		if _, err := runner.Prepare(job.scenario, job.req.Options); err != nil {
			return nil, err
		}
		optJSON, err := json.Marshal(job.req.Options)
		if err != nil {
			return nil, err
		}
		job.cacheKey = job.Hash + "\x00" + string(optJSON)
	case KindSweep:
		if len(req.Sweep) == 0 {
			return nil, fmt.Errorf("sweep job has no sweep spec")
		}
		spec, err := batch.ParseSpec(req.Sweep)
		if err != nil {
			return nil, fmt.Errorf("sweep spec: %w", err)
		}
		if _, err := spec.Expand(); err != nil {
			return nil, fmt.Errorf("sweep spec: %w", err)
		}
		job.spec = spec
	case KindExplore:
		// The scenario parse above is the full validation; explore bounds
		// default inside the engine.
	default:
		return nil, fmt.Errorf("unknown job kind %q (want simulate, sweep or explore)", kind)
	}

	job.Shard = shardOf(job.Hash, s.cfg.Shards)
	job.ctx, job.cancel = context.WithCancel(s.ctx)

	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("j%06d", s.seq)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.m.submitted.Inc()

	// Cache check (simulate only): a hit completes the job immediately, on
	// the caller's goroutine, without entering a queue.
	if job.cacheKey != "" {
		if v, ok := s.cache.get(job.cacheKey); ok {
			res := v.(*runner.Result)
			job.CacheHit = true
			job.Started = time.Now()
			job.Result = res
			s.m.cacheHits.Inc()
			s.finishLocked(job, StateDone, "served from cache")
			s.mu.Unlock()
			return job, nil
		}
		s.m.cacheMiss.Inc()
	}

	select {
	case s.queues[job.Shard] <- job:
		s.m.queued.Add(1)
		s.m.shardDepth[job.Shard].Add(1)
		s.pushEventLocked(job, Event{State: StateQueued})
		s.mu.Unlock()
		return job, nil
	default:
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// ErrQueueFull is returned by Submit when the job's shard queue is at
// capacity.
var ErrQueueFull = fmt.Errorf("shard queue is full")

// shardOf routes a canonical content hash to a shard: the hash is uniform,
// so its first 8 hex digits modulo the shard count balance the pool while
// keeping identical scenarios on one shard.
func shardOf(hash string, shards int) int {
	if len(hash) < 8 || shards <= 1 {
		return 0
	}
	v, err := strconv.ParseUint(hash[:8], 16, 64)
	if err != nil {
		return 0
	}
	return int(v % uint64(shards))
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: queued jobs complete as canceled without running,
// running sweeps stop at the next variant boundary, and a running single
// simulation finishes its run but the job still lands in state canceled.
// It reports whether the job exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	if j.State.terminal() {
		return true
	}
	j.cancel()
	if j.State == StateQueued {
		// The worker will skip it when dequeued; finish it now so pollers
		// and streams see the terminal state immediately.
		s.finishLocked(j, StateCanceled, "canceled while queued")
	}
	return true
}

// shardLoop is one worker: it drains its shard queue until shutdown.
func (s *Server) shardLoop(shard int) {
	for {
		select {
		case <-s.ctx.Done():
			return
		case job := <-s.queues[shard]:
			s.runJob(job)
		}
	}
}

// runJob executes one dequeued job through internal/runner.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	s.m.queued.Add(-1)
	s.m.shardDepth[job.Shard].Add(-1)
	if job.State.terminal() { // canceled while queued
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.Started = time.Now()
	s.m.running.Add(1)
	s.m.workersBusy.Add(1)
	s.m.simulations[job.Kind].Inc()
	s.pushEventLocked(job, Event{State: StateRunning})
	progress := func(done, total int) {
		s.mu.Lock()
		s.pushEventLocked(job, Event{State: StateRunning, Done: done, Total: total})
		s.mu.Unlock()
	}
	s.mu.Unlock()

	var (
		result  *runner.Result
		sweep   *runner.SweepResult
		explore *runner.ExploreResult
		err     error
	)
	switch job.Kind {
	case KindSimulate:
		result, err = runner.Run(job.scenario, job.req.Options, job.Hash[:12])
	case KindSweep:
		sweep, err = runner.Sweep(job.spec, job.scenario, runner.SweepOptions{
			Workers:  job.spec.Workers,
			Progress: progress,
			Context:  job.ctx,
		})
	case KindExplore:
		explore, err = runner.Explore(job.scenario, job.req.Explore, job.Hash[:12])
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.running.Add(-1)
	s.m.workersBusy.Add(-1)
	s.m.wallMS.Observe(time.Since(job.Started).Milliseconds())
	switch {
	case err != nil:
		job.Error = err.Error()
		s.finishLocked(job, StateFailed, job.Error)
	case job.ctx.Err() != nil || (sweep != nil && sweep.Canceled):
		job.Result, job.sweep, job.explore = result, sweep, explore
		s.fillSummariesLocked(job)
		s.finishLocked(job, StateCanceled, "canceled")
	default:
		job.Result, job.sweep, job.explore = result, sweep, explore
		s.fillSummariesLocked(job)
		if job.cacheKey != "" && result != nil && result.SimError == "" {
			if s.cache.put(job.cacheKey, result) {
				s.m.cacheEvict.Inc()
			}
			s.m.cacheSize.Set(int64(s.cache.len()))
		}
		s.finishLocked(job, StateDone, "")
	}
}

func (s *Server) fillSummariesLocked(job *Job) {
	if job.sweep != nil {
		sum := job.sweep.Summary
		job.SweepSummary = &sum
	}
	if job.explore != nil {
		job.Violations = len(job.explore.Summary.Violations)
	}
}

// finishLocked moves a job to a terminal state, emits the final event, and
// closes every stream subscription. Caller holds s.mu.
func (s *Server) finishLocked(job *Job, state JobState, msg string) {
	job.State = state
	job.Finished = time.Now()
	job.cancel()
	s.m.completed[state].Inc()
	s.pushEventLocked(job, Event{State: state, Message: msg})
	for _, ch := range job.subs {
		close(ch)
	}
	job.subs = nil
}

// pushEventLocked appends an event to the job log and fans it out to
// subscribers. Caller holds s.mu. A slow stream reader loses intermediate
// progress events rather than blocking the worker.
func (s *Server) pushEventLocked(job *Job, ev Event) {
	ev.Seq = len(job.events)
	ev.Time = time.Now()
	job.events = append(job.events, ev)
	for _, ch := range job.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a stream reader: it returns the events so far and a
// channel for subsequent ones (nil when the job is already terminal).
func (s *Server) subscribe(job *Job) ([]Event, chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	past := append([]Event(nil), job.events...)
	if job.State.terminal() {
		return past, nil
	}
	ch := make(chan Event, 64)
	job.subs = append(job.subs, ch)
	return past, ch
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Metrics renders the registry under the server lock (the registry itself
// is not thread-safe).
func (s *Server) writeMetrics(write func(*metrics.Registry) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return write(s.reg)
}
