package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/batch"
	"repro/internal/explore"
	"repro/internal/runner"
)

// The job journal makes rtossimd crash-safe: every submission, cancellation
// request and terminal state is appended to one NDJSON file, each line
// CRC-tagged, and replayed on startup. The guarantees are narrow and
// documented in DESIGN.md: an acknowledged submission survives a crash (the
// submit record is fsynced before the 202 goes out), a terminal state
// recorded before the crash survives with its result bytes, and anything in
// between — queued or running at the moment of the kill — is re-enqueued and
// re-run from scratch on the next start. Because simulations are
// deterministic functions of the canonical scenario, the re-run serves the
// same bytes the uninterrupted run would have.
//
// Record format: one record per line,
//
//	crc32(payload) in 8 hex digits, one space, the payload JSON, '\n'
//
// Replay stops at the first line that is truncated, fails its CRC, or does
// not decode: a torn tail (the crash happened mid-append) costs exactly the
// records at and after the tear, never the journal. The file is truncated
// back to the last valid record before appending resumes, so a corrupt tail
// cannot poison later appends.
//
// Compaction rewrites the journal as a snapshot of the in-memory job table —
// one submit record plus at most one terminal record per job — dropping
// cancel-request records, records superseded across restarts, and records
// replay rejected. It runs automatically once terminal records dominate live
// ones and the file holds more records than a snapshot would, and once on
// startup when replay found garbage.

// journalRecord is one journal line. Op selects which fields are meaningful:
//
//	"submit": ID, Time (submission), Kind, Hash, Req
//	"cancel": ID, Time (cancellation request; written for running jobs so a
//	          crash before the terminal record replays as canceled, not re-run)
//	"end":    ID, Time (finish), State, Started, Error, CacheHit, Out
type journalRecord struct {
	Op   string    `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	Kind JobKind  `json:"kind,omitempty"`
	Hash string   `json:"hash,omitempty"`
	Req  *Request `json:"req,omitempty"`

	State    JobState       `json:"state,omitempty"`
	Started  time.Time      `json:"started,omitzero"`
	Error    string         `json:"error,omitempty"`
	CacheHit bool           `json:"cacheHit,omitempty"`
	Out      *storedOutputs `json:"out,omitempty"`
}

// storedOutputs is the journal form of a terminal job's servable bytes: the
// exact payloads the report/trace/metrics/results endpoints return, so a
// restarted daemon serves byte-identical artifacts for jobs that finished in
// a previous life. Exactly one group is set, matching the job kind.
type storedOutputs struct {
	Result *storedResult `json:"result,omitempty"`

	SweepSummary *batch.Summary `json:"sweepSummary,omitempty"`
	SweepReport  []byte         `json:"sweepReport,omitempty"`
	SweepResults []byte         `json:"sweepResults,omitempty"`
	SweepCancel  bool           `json:"sweepCanceled,omitempty"`

	ExploreSummary *explore.Summary `json:"exploreSummary,omitempty"`
	ExploreReport  []byte           `json:"exploreReport,omitempty"`
	ExploreMetrics []byte           `json:"exploreMetrics,omitempty"`
}

// storedResult journals a runner.Result: the struct's JSON fields plus the
// report and artifact bytes its own marshalling deliberately omits.
type storedResult struct {
	Meta      runner.Result     `json:"meta"`
	Report    []byte            `json:"report,omitempty"`
	Artifacts map[string][]byte `json:"artifacts,omitempty"`
}

func storeResult(r *runner.Result) *storedResult {
	if r == nil {
		return nil
	}
	return &storedResult{Meta: *r, Report: r.Report, Artifacts: r.Artifacts}
}

func (s *storedResult) toResult() *runner.Result {
	if s == nil {
		return nil
	}
	r := s.Meta
	r.Report = s.Report
	r.Artifacts = s.Artifacts
	return &r
}

// journal owns the open journal file. It is guarded by the server mutex like
// everything else job-related; appends fsync before returning so an
// acknowledged record survives a crash.
type journal struct {
	path    string
	f       *os.File
	records int // valid records currently in the file
	logf    func(format string, args ...any)
}

const journalFile = "journal.ndjson"

// openJournal opens (creating if needed) the journal in dir, replays the
// valid prefix, truncates any torn tail, and returns the decoded records.
func openJournal(dir string, logf func(string, ...any)) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &journal{path: filepath.Join(dir, journalFile), logf: logf}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var recs []journalRecord
	valid := int64(0) // byte offset just past the last valid record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated final line: a torn append. Even if it decodes,
			// the write was never known complete — drop it.
			j.logf("journal: dropping unterminated final record (offset %d)", off)
			break
		}
		rec, ok := decodeRecord(data[off : off+nl])
		if !ok {
			j.logf("journal: stopping replay at corrupt record %d (offset %d)", len(recs), off)
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = int64(off)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.records = len(recs)
	return j, recs, nil
}

// decodeRecord parses one journal line, verifying its CRC tag.
func decodeRecord(line []byte) (journalRecord, bool) {
	var rec journalRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

func encodeRecord(buf *bytes.Buffer, rec *journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Fprintf(buf, "%08x ", crc32.ChecksumIEEE(payload))
	buf.Write(payload)
	buf.WriteByte('\n')
	return nil
}

// append writes one record and fsyncs. Errors are reported to the caller;
// the server logs and keeps serving (degraded durability beats an outage).
func (j *journal) append(rec *journalRecord) error {
	if j == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := encodeRecord(&buf, rec); err != nil {
		return fmt.Errorf("journal: encoding %s/%s: %w", rec.Op, rec.ID, err)
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: appending %s/%s: %w", rec.Op, rec.ID, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.records++
	return nil
}

// rewrite atomically replaces the journal with the given records: write a
// temp file in the same directory, fsync, rename over, reopen for append.
func (j *journal) rewrite(recs []journalRecord) error {
	if j == nil {
		return nil
	}
	var buf bytes.Buffer
	for i := range recs {
		if err := encodeRecord(&buf, &recs[i]); err != nil {
			return fmt.Errorf("journal: compacting: %w", err)
		}
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening after compaction: %w", err)
	}
	old.Close()
	j.f = nf
	j.records = len(recs)
	return nil
}

func (j *journal) close() {
	if j != nil && j.f != nil {
		j.f.Close()
	}
}
