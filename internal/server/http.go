package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// maxRequestBytes bounds a job submission body (scenarios are small; a sweep
// spec plus base scenario fits comfortably).
const maxRequestBytes = 4 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs              submit a job (scenario, sweep or explore);
//	                             simulate jobs without a body artifact list
//	                             negotiate it via ?artifacts=csv,vcd,... (an
//	                             empty value disables artifacts) or mapped
//	                             Accept media types
//	GET    /v1/jobs              list jobs in submission order
//	GET    /v1/jobs/{id}         job status (result summary when done)
//	GET    /v1/jobs/{id}/report  the human report, byte-identical to the CLI
//	GET    /v1/jobs/{id}/trace   the Perfetto trace artifact
//	GET    /v1/jobs/{id}/metrics the simulation metrics registry (JSON)
//	GET    /v1/jobs/{id}/results a sweep job's per-variant results (JSON)
//	GET    /v1/jobs/{id}/artifacts/{name}  any named simulate artifact
//	GET    /v1/jobs/{id}/stream  progress events as NDJSON (chunked)
//	POST   /v1/jobs/{id}/cancel  cancel (DELETE /v1/jobs/{id} is an alias)
//	GET    /metrics              daemon metrics in Prometheus text form
//	GET    /healthz              liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.jobBytes(func(j *Job, r *http.Request) ([]byte, string) {
		return j.report(), "text/plain; charset=utf-8"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.jobBytes(func(j *Job, r *http.Request) ([]byte, string) {
		return j.artifact("perfetto"), "application/json"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.jobBytes(func(j *Job, r *http.Request) ([]byte, string) {
		if data := j.exploreMetrics(); data != nil {
			return data, "application/json"
		}
		return j.artifact("metrics"), "application/json"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.jobBytes(func(j *Job, r *http.Request) ([]byte, string) {
		return j.sweepResults(), "application/json"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.jobBytes(func(j *Job, r *http.Request) ([]byte, string) {
		// Perfetto traces are JSON; metrics registries are JSON; keep it
		// simple — every artifact the runner produces today is JSON.
		return j.artifact(r.PathValue("name")), "application/json"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxRequestBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "request over %d bytes", maxRequestBytes)
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	negotiateArtifacts(r, &req)
	job, err := s.Submit(req)
	var qf *QueueFullError
	switch {
	case errors.As(err, &qf):
		s.writeQueueFull(w, qf)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJob(w, http.StatusAccepted, job)
}

// acceptArtifact maps Accept media types onto runner artifact names for
// submissions that negotiate artifacts by content type instead of listing
// them. Unmapped types (including */*) are simply ignored.
var acceptArtifact = map[string]string{
	"text/csv":                      "csv",
	"text/x-vcd":                    "vcd",
	"application/json":              "json",
	"image/svg+xml":                 "svg",
	"application/vnd.perfetto+json": "perfetto",
	"application/vnd.metrics+json":  "metrics",
	"application/openmetrics-text":  "prom",
}

// negotiateArtifacts resolves a simulate submission's artifact list when the
// request body leaves it unset. Precedence: an explicit body list always
// wins; then an ?artifacts= query (comma-separated names, an empty value
// opting out of artifacts entirely); then artifact names mapped from Accept
// media types; and finally the daemon default applied at validation. Unknown
// names fail job validation exactly like a bad body list.
func negotiateArtifacts(r *http.Request, req *Request) {
	if req.Options.Artifacts != nil {
		return
	}
	if req.Kind != "" && req.Kind != KindSimulate {
		return
	}
	if vals, ok := r.URL.Query()["artifacts"]; ok {
		list := []string{}
		for _, v := range vals {
			for _, name := range strings.Split(v, ",") {
				if name = strings.TrimSpace(name); name != "" {
					list = append(list, name)
				}
			}
		}
		req.Options.Artifacts = list
		return
	}
	var list []string
	seen := map[string]bool{}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 { // drop q-value parameters
			mt = strings.TrimSpace(mt[:i])
		}
		if name, ok := acceptArtifact[mt]; ok && !seen[name] {
			seen[name] = true
			list = append(list, name)
		}
	}
	if list != nil {
		req.Options.Artifacts = list
	}
}

// writeQueueFull renders the smart-backpressure 503: a Retry-After header
// derived from the shard's rolling service-time estimate (minimum 1s — the
// client should always back off a little) and a JSON body carrying the queue
// depth and the wait estimate in milliseconds so clients can pace themselves
// more precisely than whole seconds allow.
func (s *Server) writeQueueFull(w http.ResponseWriter, qf *QueueFullError) {
	retry := int(qf.EstimatedWait / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"error":           qf.Error(),
		"shard":           qf.Shard,
		"queueDepth":      qf.Depth,
		"estimatedWaitMs": qf.EstimatedWait.Milliseconds(),
		"retryAfterSec":   retry,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(jobs)
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return nil
	}
	return job
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookupJob(w, r); job != nil {
		s.writeJob(w, http.StatusOK, job)
	}
}

// writeJob marshals a job snapshot under the server lock (workers mutate
// jobs concurrently).
func (s *Server) writeJob(w http.ResponseWriter, code int, job *Job) {
	s.mu.Lock()
	data, err := json.MarshalIndent(job, "", "  ")
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
	w.Write([]byte("\n"))
}

// jobBytes adapts a "bytes of a finished job" accessor to a handler. 409
// for jobs still in flight, 404 for artifacts the job did not produce.
func (s *Server) jobBytes(get func(*Job, *http.Request) ([]byte, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job := s.lookupJob(w, r)
		if job == nil {
			return
		}
		s.mu.Lock()
		terminal := job.State.terminal()
		var data []byte
		var ctype string
		if terminal {
			data, ctype = get(job, r)
		}
		s.mu.Unlock()
		if !terminal {
			httpError(w, http.StatusConflict, "job %s is %s; retry when terminal", job.ID, job.State)
			return
		}
		if data == nil {
			httpError(w, http.StatusNotFound, "job %s has no such artifact", job.ID)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(data)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if !s.Cancel(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	job, _ := s.Job(r.PathValue("id"))
	s.writeJob(w, http.StatusOK, job)
}

// handleStream serves the job's event log as NDJSON and keeps the response
// open, flushing new events as the job progresses, until the job reaches a
// terminal state or the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	past, ch := s.subscribe(job)
	lastSeq := -1
	for _, ev := range past {
		enc.Encode(ev)
		lastSeq = ev.Seq
	}
	if flusher != nil {
		flusher.Flush()
	}
	if ch == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				// Terminal: emit any events a full buffer dropped, so the
				// stream always ends with the terminal transition.
				s.mu.Lock()
				tail := append([]Event(nil), job.events...)
				s.mu.Unlock()
				for _, ev := range tail {
					if ev.Seq > lastSeq {
						enc.Encode(ev)
						lastSeq = ev.Seq
					}
				}
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if ev.Seq <= lastSeq {
				continue
			}
			enc.Encode(ev)
			lastSeq = ev.Seq
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(func(reg *metrics.Registry) error {
		return reg.WritePrometheus(w)
	})
}
