package server

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/batch"
	"repro/internal/explore"
	"repro/internal/runner"
)

// JobKind names what a job runs: one simulation, a parameter sweep, or a
// schedule-space exploration.
type JobKind string

const (
	KindSimulate JobKind = "simulate"
	KindSweep    JobKind = "sweep"
	KindExplore  JobKind = "explore"
)

// JobState is the lifecycle of a job. Queued and running are transient;
// done, failed and canceled are terminal.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Terminal reports whether the state is final (done, failed or canceled);
// exported for API clients deciding when to stop polling or streaming.
func (s JobState) Terminal() bool { return s.terminal() }

// Request is the POST /v1/jobs payload. Scenario carries the scenario
// document verbatim — the daemon never touches the filesystem, so a sweep's
// base scenario is embedded here rather than named by path as in the CLI's
// sweep spec (whose "scenario" field is therefore ignored).
type Request struct {
	// Kind selects the pipeline; empty means simulate.
	Kind JobKind `json:"kind,omitempty"`
	// Scenario is the scenario JSON document (for sweeps, the base scenario).
	Scenario json.RawMessage `json:"scenario"`
	// Options parameterizes a simulate job. When its artifact list is absent
	// the daemon requests ["perfetto", "metrics"] so the trace and metrics
	// endpoints work out of the box; pass an explicit empty list to disable.
	Options runner.Options `json:"options,omitempty"`
	// Sweep is the sweep spec for kind "sweep" (axes, seeds, workers).
	Sweep json.RawMessage `json:"sweep,omitempty"`
	// Explore parameterizes an explore job.
	Explore runner.ExploreOptions `json:"explore,omitempty"`
}

// Event is one entry of a job's progress log, streamed as NDJSON by the
// stream endpoint: a state transition, a queue-position change, or a
// progress tick for sweeps.
type Event struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	State JobState  `json:"state"`
	// Message explains failures and cache hits.
	Message string `json:"message,omitempty"`
	// QueuePosition is the number of jobs ahead on the shard queue while
	// queued (0 = next to run); emitted again whenever it improves.
	QueuePosition *int `json:"queuePosition,omitempty"`
	// Done/Total report sweep progress at variant granularity.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// Job is one queued unit of work and its outcome. All fields are guarded by
// the server mutex; results are written exactly once, on completion.
type Job struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	// Hash is the scenario's canonical content hash; jobs for semantically
	// identical scenarios share it regardless of JSON spelling.
	Hash string `json:"hash"`
	// Shard is the worker queue the hash routed this job to.
	Shard int `json:"shard"`
	// CacheHit reports that the result was served from the content-hash
	// cache without running a simulation.
	CacheHit bool      `json:"cacheHit"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// QueuePosition is the number of jobs ahead on the shard queue while
	// the job is queued (0 = next to run); absent otherwise.
	QueuePosition *int `json:"queuePosition,omitempty"`
	// Error is the load/validate/build-class failure of a failed job.
	Error string `json:"error,omitempty"`

	// Exactly one of the three results is set on a done job, matching Kind.
	Result         *runner.Result   `json:"result,omitempty"`
	SweepSummary   *batch.Summary   `json:"sweepSummary,omitempty"`
	ExploreSummary *explore.Summary `json:"exploreSummary,omitempty"`
	// Violations counts an explore job's invariant violations.
	Violations int `json:"violations,omitempty"`

	sweep    *runner.SweepResult
	explore  *runner.ExploreResult
	restored *storedOutputs // journal-replayed outputs of a prior life
	req      Request
	scenario []byte
	spec     *batch.Spec
	cacheKey string

	events []Event
	subs   []chan Event

	ctx    context.Context
	cancel context.CancelFunc
}

// report returns the job's human report bytes, nil when not (yet) available.
func (j *Job) report() []byte {
	switch {
	case j.Result != nil && j.Result.Report != nil:
		return j.Result.Report
	case j.explore != nil:
		return j.explore.Report
	case j.sweep != nil:
		return j.sweep.Report
	case j.restored != nil && j.restored.ExploreReport != nil:
		return j.restored.ExploreReport
	case j.restored != nil && j.restored.SweepReport != nil:
		return j.restored.SweepReport
	}
	return nil
}

// artifact returns one named artifact of a done job.
func (j *Job) artifact(name string) []byte {
	if j.Result == nil {
		return nil
	}
	return j.Result.Artifacts[name]
}

// sweepResults returns a sweep job's per-variant rows as JSON, falling back
// to the journaled rendering for jobs restored from a prior life.
func (j *Job) sweepResults() []byte {
	if j.sweep != nil {
		data, err := j.sweep.ResultsJSON()
		if err != nil {
			return nil
		}
		return data
	}
	if j.restored != nil {
		return j.restored.SweepResults
	}
	return nil
}

// exploreMetrics returns an explore job's metrics registry JSON.
func (j *Job) exploreMetrics() []byte {
	if j.explore != nil {
		return j.explore.MetricsJSON
	}
	if j.restored != nil {
		return j.restored.ExploreMetrics
	}
	return nil
}

// outputs renders the job's servable bytes for its journal terminal record.
// Cache-hit jobs store result metadata only — the payload lives in the
// original job's record and is relinked through the cache on replay.
func (j *Job) outputs() *storedOutputs {
	if j.restored != nil {
		return j.restored
	}
	out := &storedOutputs{}
	switch {
	case j.CacheHit && j.Result != nil:
		out.Result = &storedResult{Meta: *j.Result}
		out.Result.Meta.Report = nil
		out.Result.Meta.Artifacts = nil
	case j.Result != nil:
		out.Result = storeResult(j.Result)
	case j.sweep != nil:
		sum := j.sweep.Summary
		out.SweepSummary = &sum
		out.SweepReport = j.sweep.Report
		out.SweepResults = j.sweepResults()
	case j.explore != nil:
		sum := j.explore.Summary
		out.ExploreSummary = &sum
		out.ExploreReport = j.explore.Report
		out.ExploreMetrics = j.explore.MetricsJSON
	default:
		return nil
	}
	return out
}

// restoreOutputs rehydrates a replayed terminal job from its journal record.
func (j *Job) restoreOutputs(out *storedOutputs) {
	j.restored = out
	if out == nil {
		return
	}
	if out.Result != nil {
		j.Result = out.Result.toResult()
	}
	if out.SweepSummary != nil {
		sum := *out.SweepSummary
		j.SweepSummary = &sum
	}
	if out.ExploreSummary != nil {
		sum := *out.ExploreSummary
		j.ExploreSummary = &sum
		j.Violations = len(sum.Violations)
	}
}
