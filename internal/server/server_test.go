package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func readScenario(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postJob(t *testing.T, ts *httptest.Server, req any) Job {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, out)
	}
	var job Job
	if err := json.Unmarshal(out, &job); err != nil {
		t.Fatalf("submit response: %v: %s", err, out)
	}
	return job
}

func getJob(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job := getJob(t, ts, id)
		if job.State.terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func getBytes(t *testing.T, ts *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return data, resp.StatusCode
}

// promValue scrapes one sample from the /metrics endpoint, summed over the
// matching series (Prometheus text form, e.g. `rtossimd_simulations_total`).
func promValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	data, code := getBytes(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var sum float64
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // longer metric name with this prefix
		}
		fields := strings.Fields(line)
		var v float64
		fmt.Sscanf(fields[len(fields)-1], "%g", &v)
		sum += v
	}
	return sum
}

func TestSimulateJobMatchesCLIBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := readScenario(t, "figure6.json")

	job := postJob(t, ts, Request{Scenario: data})
	if job.Hash == "" || job.Kind != KindSimulate {
		t.Fatalf("submit response incomplete: %+v", job)
	}
	done := waitTerminal(t, ts, job.ID)
	if done.State != StateDone {
		t.Fatalf("job state = %s (error %q)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Name != "figure6" {
		t.Fatalf("result summary missing: %+v", done.Result)
	}

	// The daemon's report and trace must be byte-identical to what the CLI
	// produces for the same scenario: both are composed once, in runner.
	want, err := runner.Run(data, runner.Options{Artifacts: []string{"perfetto", "metrics"}}, "x")
	if err != nil {
		t.Fatal(err)
	}
	report, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report: status %d", code)
	}
	if !bytes.Equal(report, want.Report) {
		t.Errorf("daemon report differs from CLI report:\n--- daemon\n%s\n--- cli\n%s", report, want.Report)
	}
	trace, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d", code)
	}
	if !bytes.Equal(trace, want.Artifacts["perfetto"]) {
		t.Error("daemon trace differs from CLI perfetto artifact")
	}
	met, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/metrics")
	if code != http.StatusOK || !json.Valid(met) {
		t.Fatalf("/metrics artifact: status %d, valid JSON %v", code, json.Valid(met))
	}
}

func TestCacheHitRunsNoSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Two spellings of one scenario: field order scrambled, durations
	// respelled. The canonical hash must unify them.
	a := []byte(`{
		"name": "tiny", "horizon": "1ms",
		"processors": [{"name": "cpu0"}],
		"tasks": [{"name": "t", "processor": "cpu0", "priority": 2, "period": "100us",
		           "body": [{"op": "execute", "for": "10us"}]}]
	}`)
	b := []byte(`{
		"tasks": [{"body": [{"for": "10000ns", "op": "execute"}],
		           "period": "0.1ms", "priority": 2, "processor": "cpu0", "name": "t"}],
		"processors": [{"name": "cpu0"}],
		"horizon": "1000us", "name": "tiny"
	}`)

	first := waitTerminal(t, ts, postJob(t, ts, Request{Scenario: a}).ID)
	if first.State != StateDone || first.CacheHit {
		t.Fatalf("first job: state %s, cacheHit %v", first.State, first.CacheHit)
	}
	sims := promValue(t, ts, "rtossimd_simulations_total")
	if sims != 1 {
		t.Fatalf("simulations after first job = %v, want 1", sims)
	}

	second := postJob(t, ts, Request{Scenario: b})
	if second.Hash != first.Hash {
		t.Fatalf("respelled scenario hashed differently: %s vs %s", second.Hash, first.Hash)
	}
	if !second.CacheHit || second.State != StateDone {
		t.Fatalf("second job not served from cache: %+v", second)
	}
	if got := promValue(t, ts, "rtossimd_simulations_total"); got != sims {
		t.Errorf("cache hit ran a simulation: counter %v -> %v", sims, got)
	}
	if hits := promValue(t, ts, "rtossimd_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}

	// Both jobs serve identical bytes.
	r1, _ := getBytes(t, ts, "/v1/jobs/"+first.ID+"/report")
	r2, _ := getBytes(t, ts, "/v1/jobs/"+second.ID+"/report")
	if !bytes.Equal(r1, r2) {
		t.Error("cached report differs from original")
	}

	// Different options miss the cache.
	third := postJob(t, ts, Request{Scenario: a, Options: runner.Options{Timeline: true}})
	if third.CacheHit {
		t.Error("job with different options hit the cache")
	}
	waitTerminal(t, ts, third.ID)
}

func TestSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := readScenario(t, "figure6.json")
	job := postJob(t, ts, Request{
		Kind:     KindSweep,
		Scenario: base,
		Sweep:    json.RawMessage(`{"engines": ["procedural", "threaded"], "speeds": [1, 2]}`),
	})
	done := waitTerminal(t, ts, job.ID)
	if done.State != StateDone {
		t.Fatalf("sweep state = %s (error %q)", done.State, done.Error)
	}
	if done.SweepSummary == nil || done.SweepSummary.Runs != 4 {
		t.Fatalf("sweep summary = %+v", done.SweepSummary)
	}
	report, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/report")
	if code != http.StatusOK || !strings.Contains(string(report), "run(s)") {
		t.Errorf("sweep report: status %d:\n%s", code, report)
	}
	results, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("/results: status %d", code)
	}
	var rows []map[string]any
	if err := json.Unmarshal(results, &rows); err != nil || len(rows) != 4 {
		t.Errorf("sweep results: %v, %d rows", err, len(rows))
	}
}

// postJobAt submits a request to a specific path (query parameters allowed)
// with optional headers, returning the accepted job.
func postJobAt(t *testing.T, ts *httptest.Server, path string, req any, hdr map[string]string) Job {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d: %s", path, resp.StatusCode, out)
	}
	var job Job
	if err := json.Unmarshal(out, &job); err != nil {
		t.Fatalf("submit response: %v: %s", err, out)
	}
	return job
}

// artifactNames fetches a finished job and lists which artifacts it produced.
func artifactNames(t *testing.T, ts *httptest.Server, id string) []string {
	t.Helper()
	job := waitTerminal(t, ts, id)
	if job.State != StateDone {
		t.Fatalf("job %s: state %s (%s)", id, job.State, job.Error)
	}
	if job.Result == nil {
		t.Fatalf("job %s has no result", id)
	}
	var names []string
	for _, name := range runner.KnownArtifacts {
		if _, code := getBytes(t, ts, "/v1/jobs/"+id+"/artifacts/"+name); code == http.StatusOK {
			names = append(names, name)
		}
	}
	return names
}

// Artifact negotiation on submission: the ?artifacts= query and the Accept
// header choose a simulate job's artifact set when the body does not, with
// body > query > Accept > default precedence.
func TestSubmitArtifactNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := readScenario(t, "figure6.json")

	// Query list: exactly the named artifacts are produced.
	job := postJobAt(t, ts, "/v1/jobs?artifacts=csv,vcd", Request{Scenario: data}, nil)
	if got := artifactNames(t, ts, job.ID); !reflect.DeepEqual(got, []string{"csv", "vcd"}) {
		t.Errorf("query negotiation produced %v, want [csv vcd]", got)
	}

	// Empty query value: opts out of artifacts entirely.
	job = postJobAt(t, ts, "/v1/jobs?artifacts=", Request{Scenario: data}, nil)
	if got := artifactNames(t, ts, job.ID); got != nil {
		t.Errorf("empty artifacts query still produced %v", got)
	}

	// Accept media types map to artifact names (q-values ignored).
	job = postJobAt(t, ts, "/v1/jobs", Request{Scenario: data},
		map[string]string{"Accept": "text/csv;q=0.9, image/svg+xml"})
	if got := artifactNames(t, ts, job.ID); !reflect.DeepEqual(got, []string{"csv", "svg"}) {
		t.Errorf("accept negotiation produced %v, want [csv svg]", got)
	}

	// A body list wins over both query and header.
	job = postJobAt(t, ts, "/v1/jobs?artifacts=csv", Request{Scenario: data,
		Options: runner.Options{Artifacts: []string{"json"}}},
		map[string]string{"Accept": "image/svg+xml"})
	if got := artifactNames(t, ts, job.ID); !reflect.DeepEqual(got, []string{"json"}) {
		t.Errorf("body list did not win: %v", got)
	}

	// An unmapped Accept header falls back to the daemon default.
	job = postJobAt(t, ts, "/v1/jobs", Request{Scenario: data},
		map[string]string{"Accept": "*/*"})
	if got := artifactNames(t, ts, job.ID); !reflect.DeepEqual(got, []string{"perfetto", "metrics"}) {
		t.Errorf("default negotiation produced %v, want [perfetto metrics]", got)
	}

	// Unknown names in the query fail validation like a bad body list.
	body, _ := json.Marshal(Request{Scenario: data})
	resp, err := http.Post(ts.URL+"/v1/jobs?artifacts=pdf", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown artifact name: status %d, want 400", resp.StatusCode)
	}
}

// Sweep jobs cache per variant: resubmitting a sweep runs zero simulations
// and serves identical results, and a sweep sharing only some variants with
// an earlier one simulates just the new ones. rtossimd_simulations_total
// counts executed variants, so it pins all of this.
func TestSweepVariantCacheSkipsSimulations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := readScenario(t, "figure6.json")
	req := Request{
		Kind:     KindSweep,
		Scenario: base,
		Sweep:    json.RawMessage(`{"engines": ["procedural", "threaded"], "speeds": [1, 2]}`),
	}

	first := waitTerminal(t, ts, postJob(t, ts, req).ID)
	if first.State != StateDone || first.SweepSummary == nil || first.SweepSummary.Runs != 4 {
		t.Fatalf("first sweep: state %s, summary %+v", first.State, first.SweepSummary)
	}
	sims := promValue(t, ts, "rtossimd_simulations_total")
	if sims != 4 {
		t.Fatalf("simulations after first sweep = %v, want 4 (one per variant)", sims)
	}

	second := waitTerminal(t, ts, postJob(t, ts, req).ID)
	if second.State != StateDone || second.SweepSummary == nil || second.SweepSummary.Runs != 4 {
		t.Fatalf("second sweep: state %s, summary %+v", second.State, second.SweepSummary)
	}
	if got := promValue(t, ts, "rtossimd_simulations_total"); got != sims {
		t.Errorf("repeated sweep re-simulated variants: counter %v -> %v", sims, got)
	}
	if hits := promValue(t, ts, "rtossimd_cache_hits_total"); hits != 4 {
		t.Errorf("cache hits = %v, want 4", hits)
	}
	r1, _ := getBytes(t, ts, "/v1/jobs/"+first.ID+"/results")
	r2, _ := getBytes(t, ts, "/v1/jobs/"+second.ID+"/results")
	if !bytes.Equal(r1, r2) {
		t.Errorf("cached sweep results differ from original:\n--- first\n%s\n--- second\n%s", r1, r2)
	}

	// Overlapping sweep: speeds {1,3} shares the speed-1 variants with the
	// first sweep, so only the speed-3 pair simulates.
	third := waitTerminal(t, ts, postJob(t, ts, Request{
		Kind:     KindSweep,
		Scenario: base,
		Sweep:    json.RawMessage(`{"engines": ["procedural", "threaded"], "speeds": [1, 3]}`),
	}).ID)
	if third.State != StateDone || third.SweepSummary == nil || third.SweepSummary.Runs != 4 {
		t.Fatalf("third sweep: state %s, summary %+v", third.State, third.SweepSummary)
	}
	if got := promValue(t, ts, "rtossimd_simulations_total"); got != sims+2 {
		t.Errorf("overlapping sweep simulated %v new variants, want 2", got-sims)
	}

	// A different spec horizon is a different simulation: nothing may hit.
	fourth := waitTerminal(t, ts, postJob(t, ts, Request{
		Kind:     KindSweep,
		Scenario: base,
		Sweep:    json.RawMessage(`{"engines": ["procedural"], "speeds": [1], "horizon": "40ms"}`),
	}).ID)
	if fourth.State != StateDone {
		t.Fatalf("horizon sweep: state %s (%s)", fourth.State, fourth.Error)
	}
	if got := promValue(t, ts, "rtossimd_simulations_total"); got != sims+3 {
		t.Errorf("horizon-overridden variant should miss the cache: counter %v, want %v", got, sims+3)
	}
}

func TestExploreJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	job := postJob(t, ts, Request{
		Kind:     KindExplore,
		Scenario: readScenario(t, "faults.json"),
		Explore:  runner.ExploreOptions{Runs: 8, Workers: 2},
	})
	done := waitTerminal(t, ts, job.ID)
	if done.State != StateDone {
		t.Fatalf("explore state = %s (error %q)", done.State, done.Error)
	}
	report, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/report")
	if code != http.StatusOK || !strings.HasPrefix(string(report), "scenario ") {
		t.Errorf("explore report: status %d:\n%s", code, report)
	}
	met, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/metrics")
	if code != http.StatusOK || !json.Valid(met) {
		t.Errorf("explore metrics: status %d", code)
	}
}

// slowSweepRequest builds a sweep with enough variants to stay in flight
// while the test cancels or queues behind it.
func slowSweepRequest(t *testing.T) Request {
	// A dense scenario (10k release cycles per variant) swept over 32 seeds
	// on one worker: long enough to observe queued and running states.
	scenario := json.RawMessage(`{
		"name": "slow", "horizon": "200ms",
		"processors": [{"name": "cpu0"}],
		"tasks": [{"name": "t", "processor": "cpu0", "priority": 2, "period": "20us",
		           "body": [{"op": "execute", "for": "5us"}]}]
	}`)
	return Request{
		Kind:     KindSweep,
		Scenario: scenario,
		Sweep:    json.RawMessage(`{"workers": 1, "seeds": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32]}`),
	}
}

func TestCancelRunningSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	job := postJob(t, ts, slowSweepRequest(t))

	// Wait for the sweep to start, then cancel mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, job.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+job.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := waitTerminal(t, ts, job.ID)
	if done.State != StateCanceled {
		t.Fatalf("state after cancel = %s", done.State)
	}
	if done.SweepSummary == nil || done.SweepSummary.Runs != 32 {
		t.Errorf("canceled sweep kept no per-variant accounting: %+v", done.SweepSummary)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	blocker := postJob(t, ts, slowSweepRequest(t))
	queued := postJob(t, ts, Request{Scenario: readScenario(t, "figure6.json")})

	if !s.Cancel(queued.ID) {
		t.Fatal("cancel reported unknown job")
	}
	got := getJob(t, ts, queued.ID)
	if got.State != StateCanceled {
		t.Fatalf("queued job state after cancel = %s", got.State)
	}
	if !got.Started.IsZero() {
		t.Error("canceled queued job reports a start time")
	}
	s.Cancel(blocker.ID)
	waitTerminal(t, ts, blocker.ID)
}

func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 1})
	blocker := postJob(t, ts, slowSweepRequest(t))
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, blocker.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	postJob(t, ts, slowSweepRequest(t)) // fills the depth-1 queue

	body, _ := json.Marshal(slowSweepRequest(t))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d, want 503", resp.StatusCode)
	}
}

func TestStreamEndsWithTerminalEvent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	job := postJob(t, ts, Request{
		Kind:     KindSweep,
		Scenario: readScenario(t, "figure6.json"),
		Sweep:    json.RawMessage(`{"engines": ["procedural", "threaded"]}`),
	})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("stream produced %d events, want at least queued+terminal", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Errorf("event seq not increasing: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	last := events[len(events)-1]
	if !last.State.terminal() {
		t.Errorf("stream ended on non-terminal event %+v", last)
	}
	var progress int
	for _, ev := range events {
		if ev.Total > 0 {
			progress++
		}
	}
	if progress == 0 {
		t.Error("sweep stream carried no progress events")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{"); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d", code)
	}
	if code := post(`{}`); code != http.StatusBadRequest {
		t.Errorf("missing scenario: %d", code)
	}
	if code := post(`{"kind": "teleport", "scenario": {"processors": [{"name": "c"}]}}`); code != http.StatusBadRequest {
		t.Errorf("unknown kind: %d", code)
	}
	if code := post(`{"scenario": {"bogus": true}}`); code != http.StatusBadRequest {
		t.Errorf("invalid scenario: %d", code)
	}
	if code := post(`{"kind": "sweep", "scenario": {"processors": [{"name": "c"}]}}`); code != http.StatusBadRequest {
		t.Errorf("sweep without spec: %d", code)
	}
	if _, code := getBytes(t, ts, "/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d", code)
	}
	if _, code := getBytes(t, ts, "/v1/jobs/j999999/report"); code != http.StatusNotFound {
		t.Errorf("unknown job report: %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/j999999/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d", resp.StatusCode)
	}
	if _, code := getBytes(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
}

func TestJobsListAndQueueMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		job := postJob(t, ts, Request{Scenario: readScenario(t, "figure6.json")})
		waitTerminal(t, ts, job.ID)
	}
	data, code := getBytes(t, ts, "/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("/v1/jobs: status %d", code)
	}
	var jobs []Job
	if err := json.Unmarshal(data, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].ID <= jobs[i-1].ID {
			t.Errorf("list not in submission order: %s then %s", jobs[i-1].ID, jobs[i].ID)
		}
	}
	if v := promValue(t, ts, "rtossimd_jobs_submitted_total"); v != 3 {
		t.Errorf("submitted = %v, want 3", v)
	}
	if v := promValue(t, ts, "rtossimd_jobs_queued"); v != 0 {
		t.Errorf("queued gauge = %v, want 0 after drain", v)
	}
	if v := promValue(t, ts, "rtossimd_workers"); v == 0 {
		t.Error("workers gauge not exported")
	}
}

func TestShardOf(t *testing.T) {
	if shardOf("00000007deadbeef", 4) != 3 {
		t.Errorf("shardOf miscomputed: %d", shardOf("00000007deadbeef", 4))
	}
	if shardOf("zz", 4) != 0 || shardOf("abc", 4) != 0 || shardOf("ffffffff", 1) != 0 {
		t.Error("degenerate hashes must land on shard 0")
	}
	// Same hash, same shard — the routing invariant behind cache locality.
	for i := 0; i < 8; i++ {
		if shardOf("cafebabe12345678", 8) != shardOf("cafebabe12345678", 8) {
			t.Fatal("shardOf not deterministic")
		}
	}
}
