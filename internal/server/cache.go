package server

import "container/list"

// resultCache is a plain LRU over finished simulate results, keyed by the
// scenario's canonical content hash plus the canonical options JSON. Entries
// are immutable once inserted — the cached *runner.Result and its byte
// slices are shared between jobs, never mutated — so a hit costs a map
// lookup and a list splice. The cache is guarded by the server mutex.
type resultCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	value any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

func (c *resultCache) get(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

func (c *resultCache) put(key string, value any) (evicted bool) {
	if c.cap <= 0 {
		return false
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return false
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
	if len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		return true
	}
	return false
}

func (c *resultCache) len() int { return len(c.entries) }
