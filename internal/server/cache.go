package server

import (
	"container/list"
	"encoding/json"
	"strconv"

	"repro/internal/batch"
	"repro/internal/scenario"
)

// resultCache is a plain LRU over finished simulate results, keyed by the
// scenario's canonical content hash plus the canonical options JSON. Entries
// are immutable once inserted — the cached *runner.Result and its byte
// slices are shared between jobs, never mutated — so a hit costs a map
// lookup and a list splice. The cache is guarded by the server mutex.
type resultCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	value any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

func (c *resultCache) get(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

func (c *resultCache) put(key string, value any) (evicted bool) {
	if c.cap <= 0 {
		return false
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return false
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
	if len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		return true
	}
	return false
}

func (c *resultCache) len() int { return len(c.entries) }

// sweepVariantKey keys one sweep variant's result: the base scenario's
// canonical content hash, the spec horizon (the only spec field besides the
// variant itself that changes a run), and the variant with its ordinal index
// cleared — the same configuration at a different position in a different
// sweep is the same deterministic simulation.
func sweepVariantKey(hash string, horizon scenario.Duration, v batch.Variant) (string, bool) {
	v.Index = 0
	data, err := json.Marshal(v)
	if err != nil {
		return "", false
	}
	return "sweep\x00" + hash + "\x00" + strconv.FormatInt(int64(horizon), 10) + "\x00" + string(data), true
}

// sweepLookup builds the per-variant cache probe for one sweep job. A miss
// is the moment a variant is committed to actually simulate, so the
// simulations counter ticks here; hit/miss metrics move only when caching is
// enabled, matching the simulate-job accounting.
func (s *Server) sweepLookup(job *Job) func(batch.Variant) (batch.Result, bool) {
	return func(v batch.Variant) (batch.Result, bool) {
		key, ok := sweepVariantKey(job.Hash, job.spec.Horizon, v)
		s.mu.Lock()
		defer s.mu.Unlock()
		if ok && s.cache.cap > 0 {
			if hit, found := s.cache.get(key); found {
				s.m.cacheHits.Inc()
				return hit.(batch.Result), true
			}
			s.m.cacheMiss.Inc()
		}
		s.m.simulations[KindSweep].Inc()
		return batch.Result{}, false
	}
}

// sweepStore inserts one freshly simulated variant result. The batch layer
// only offers successful results, and restores the live index on later hits,
// so the stored value is index-normalized and immutable.
func (s *Server) sweepStore(job *Job) func(batch.Variant, batch.Result) {
	return func(v batch.Variant, r batch.Result) {
		key, ok := sweepVariantKey(job.Hash, job.spec.Horizon, v)
		if !ok {
			return
		}
		r.Variant.Index = 0
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.cache.put(key, r) {
			s.m.cacheEvict.Inc()
		}
		s.m.cacheSize.Set(int64(s.cache.len()))
	}
}
