package server

import "time"

// shardEstimator keeps a rolling per-shard estimate of job service time, fed
// by the same wall-clock timings the rtossimd_job_wall_ms histogram records.
// It backs the smart-backpressure response: when a shard queue is full, the
// 503 carries the estimated wait for a queue slot to open instead of a bare
// "try later". An exponentially weighted moving average is enough here —
// job cost is dominated by the scenario, and scenarios hash to a fixed
// shard, so per-shard history is the right predictor.
type shardEstimator struct {
	ewma    []float64 // nanoseconds; 0 until the first sample
	samples []uint64
}

// ewmaAlpha weights the newest sample: high enough to track a workload
// shift within a few jobs, low enough that one outlier does not swing the
// advertised wait.
const ewmaAlpha = 0.3

func newShardEstimator(shards int) *shardEstimator {
	return &shardEstimator{ewma: make([]float64, shards), samples: make([]uint64, shards)}
}

// observe records one completed job's service time on a shard.
func (e *shardEstimator) observe(shard int, d time.Duration) {
	if d < 0 {
		return
	}
	e.samples[shard]++
	if e.samples[shard] == 1 {
		e.ewma[shard] = float64(d)
		return
	}
	e.ewma[shard] = ewmaAlpha*float64(d) + (1-ewmaAlpha)*e.ewma[shard]
}

// serviceTime returns the shard's current estimate (0 before any sample).
func (e *shardEstimator) serviceTime(shard int) time.Duration {
	return time.Duration(e.ewma[shard])
}

// wait estimates how long a submission arriving now would sit before
// running: the jobs ahead of it (queued plus the one executing) times the
// per-job estimate.
func (e *shardEstimator) wait(shard, ahead int) time.Duration {
	return time.Duration(ahead) * e.serviceTime(shard)
}
