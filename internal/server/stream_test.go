package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedWriter is a ResponseWriter whose Write blocks until the gate opens:
// it pins the stream handler mid-write so the job's event fan-out channel
// (capacity 64) overflows and drops events, exercising the terminal tail
// replay that guarantees the stream still ends complete and in order.
type gatedWriter struct {
	gate <-chan struct{}
	mu   sync.Mutex
	buf  bytes.Buffer
	h    http.Header
}

func (w *gatedWriter) Header() http.Header { return w.h }
func (w *gatedWriter) WriteHeader(int)     {}
func (w *gatedWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *gatedWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

func TestStreamDroppedEventTailReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	blocker := postJob(t, ts, slowSweepRequest(t))

	// A fast sweep with ~100 variants: >100 progress events, well past the
	// 64-slot subscription buffer, so a blocked reader must drop some.
	seeds := make([]int, 100)
	for i := range seeds {
		seeds[i] = i + 1
	}
	seedJSON, _ := json.Marshal(seeds)
	target := postJob(t, ts, Request{
		Kind: KindSweep,
		Scenario: json.RawMessage(`{
			"name": "fast", "horizon": "1ms",
			"processors": [{"name": "cpu0"}],
			"tasks": [{"name": "t", "processor": "cpu0", "priority": 2, "period": "100us",
			           "body": [{"op": "execute", "for": "10us"}]}]
		}`),
		Sweep: json.RawMessage(`{"workers": 1, "seeds": ` + string(seedJSON) + `}`),
	})

	gate := make(chan struct{})
	w := &gatedWriter{gate: gate, h: make(http.Header)}
	req := httptest.NewRequest("GET", "/v1/jobs/"+target.ID+"/stream", nil)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		s.Handler().ServeHTTP(w, req)
	}()

	// Wait until the stream handler has subscribed, then let the sweep run
	// while the reader stays wedged in its first Write.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		subscribed := len(s.jobs[target.ID].subs) > 0
		s.mu.Unlock()
		if subscribed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(blocker.ID) {
		t.Fatal("cancel blocker")
	}
	done := waitTerminal(t, ts, target.ID)
	if done.State != StateDone {
		t.Fatalf("target sweep: %s (%s)", done.State, done.Error)
	}
	close(gate)
	select {
	case <-handlerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stream handler did not finish after terminal state")
	}

	// The job produced more events than the subscription buffer holds…
	s.mu.Lock()
	total := len(s.jobs[target.ID].events)
	s.mu.Unlock()
	if total <= 64 {
		t.Fatalf("job produced %d events, want >64 to overflow the buffer", total)
	}
	// …yet the stream replays every one of them, in order, terminal last.
	var events []Event
	for _, line := range strings.Split(strings.TrimSpace(string(w.bytes())), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != total {
		t.Errorf("stream delivered %d events, job log holds %d", len(events), total)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: tail replay lost or reordered events", i, ev.Seq)
		}
	}
	if !events[len(events)-1].State.terminal() {
		t.Errorf("stream ended on non-terminal event %+v", events[len(events)-1])
	}
}

func TestCancelRacesCompletion(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2})
	data := readScenario(t, "figure6.json")

	// Fire cancels concurrently with job completion, over and over: whatever
	// the interleaving, the job must land in exactly one terminal state with
	// its subscriptions closed, and the stream must still terminate.
	for i := 0; i < 12; i++ {
		job := postJob(t, ts, Request{Scenario: data, Options: optionsVariant(i)})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Cancel(job.ID)
		}()
		done := waitTerminal(t, ts, job.ID)
		wg.Wait()
		if done.State != StateDone && done.State != StateCanceled {
			t.Fatalf("race iteration %d: state %s (%s)", i, done.State, done.Error)
		}
		// Cancel after terminal must stay idempotent and truthful.
		if !s.Cancel(job.ID) {
			t.Fatalf("cancel of finished job %s reported unknown", job.ID)
		}
		stream, code := getBytes(t, ts, "/v1/jobs/"+job.ID+"/stream")
		if code != http.StatusOK {
			t.Fatalf("/stream: %d", code)
		}
		lines := strings.Split(strings.TrimSpace(string(stream)), "\n")
		var last Event
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || !last.State.terminal() {
			t.Fatalf("race iteration %d: stream tail %v %+v", i, err, last)
		}
		s.mu.Lock()
		subs := len(s.jobs[job.ID].subs)
		s.mu.Unlock()
		if subs != 0 {
			t.Fatalf("race iteration %d: %d subscriptions left open", i, subs)
		}
	}
}
