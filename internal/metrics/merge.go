package metrics

import "fmt"

// Merge folds other's instruments into r, registering any that r lacks:
// counters add, gauges add their values and keep the larger high-water mark,
// histograms add bucket counts and combine count/sum/min/max. The sharded
// parallel engine uses it to aggregate per-shard registries into the one
// registry the metrics artifacts render; merging registries whose shared
// histograms were registered with different bucket bounds is a model bug and
// panics.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for _, m := range other.metrics {
		switch m.kind {
		case KindCounter:
			if m.counter != nil {
				r.Counter(m.name, m.help, m.labels...).Add(m.counter.v)
			}
		case KindGauge:
			if m.gauge != nil {
				g := r.Gauge(m.name, m.help, m.labels...)
				g.v += m.gauge.v
				if m.gauge.hw > g.hw {
					g.hw = m.gauge.hw
				}
				if g.v > g.hw {
					g.hw = g.v
				}
			}
		case KindHistogram:
			if m.hist != nil {
				h := r.Histogram(m.name, m.help, m.hist.bounds, m.labels...)
				if len(h.counts) != len(m.hist.counts) {
					panic(fmt.Sprintf("metrics: merging histogram %q with mismatched buckets", m.name))
				}
				if m.hist.count > 0 {
					if h.count == 0 || m.hist.min < h.min {
						h.min = m.hist.min
					}
					if h.count == 0 || m.hist.max > h.max {
						h.max = m.hist.max
					}
					h.count += m.hist.count
					h.sum += m.hist.sum
				}
				for i, c := range m.hist.counts {
					h.counts[i] += c
				}
			}
		}
	}
}
