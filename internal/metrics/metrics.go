// Package metrics is a lightweight, allocation-free metrics registry for the
// simulation: counters, gauges with high-water tracking, and fixed-bucket
// histograms.
//
// Design constraints, in order:
//
//  1. The record path must not allocate. Instruments are plain structs whose
//     update methods are field increments; registration (which allocates) is
//     done once at model construction, never on a hot path. This preserves
//     the zero-allocs-per-context-switch guarantee of the simulation kernel
//     and RTOS model with metrics collection always on.
//  2. Instruments are nil-safe, like trace.Recorder: every method on a nil
//     instrument is a no-op, so model code can record unconditionally.
//  3. Snapshots are cheap and can be taken mid-run (between Run steps of a
//     single-threaded simulation); exports are deterministic — metrics
//     appear in registration order, so two identical runs produce
//     byte-identical JSON and Prometheus text.
//
// Values are int64/uint64; time-valued metrics hold picoseconds (the unit of
// sim.Time) and say so in their name (`…_ps`). The package deliberately
// imports nothing from the rest of the repository so every layer (sim, rtos,
// batch) can depend on it without cycles.
package metrics

import (
	"fmt"
	"strings"
)

// Label is one name=value dimension of a metric (e.g. task="control").
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil counter discards updates.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous int64 value that additionally tracks its
// high-water mark (the largest value ever set). A nil gauge discards
// updates.
type Gauge struct {
	v  int64
	hw int64
}

// Set stores v and raises the high-water mark if exceeded.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.hw {
		g.hw = v
	}
}

// Add adjusts the value by d (negative allowed).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HighWater returns the largest value the gauge ever held.
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hw
}

// Histogram is a fixed-bucket distribution of int64 observations. Bucket
// bounds are upper bounds in ascending order; observations above the last
// bound land in an implicit +Inf bucket. Observe never allocates. A nil
// histogram discards observations.
type Histogram struct {
	bounds []int64  // ascending upper bounds (inclusive)
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; typical bucket counts are
	// small (≈20) so this costs a handful of comparisons and no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from the
// bucket counts: the upper bound of the bucket containing the q-th
// observation, Max() for the overflow bucket. It is a bucket-resolution
// estimate, exact only at bucket boundaries.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Kind classifies a registered metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "invalid"
}

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. It is not safe for concurrent use: each
// simulation owns a private registry, mirroring the one-kernel-per-goroutine
// model of package batch. Registration is idempotent — asking twice for the
// same (name, labels) returns the same instrument — so model layers can
// share instruments without coordination.
type Registry struct {
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}}
}

// key builds the identity of a (name, labels) pair.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\x00')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or registers a metric slot.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *metric {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if m, ok := r.index[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %q re-registered as %v, was %v", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), kind: kind}
	r.metrics = append(r.metrics, m)
	r.index[k] = m
	return m
}

// Counter finds or registers the counter with the given name and labels. A
// nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, help, KindCounter, labels)
	if m == nil {
		return nil
	}
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge finds or registers the gauge with the given name and labels. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.lookup(name, help, KindGauge, labels)
	if m == nil {
		return nil
	}
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram finds or registers the histogram with the given name, bucket
// upper bounds (ascending; copied) and labels. A nil registry returns a nil
// (no-op) histogram. Re-registration keeps the original buckets.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	m := r.lookup(name, help, KindHistogram, labels)
	if m == nil {
		return nil
	}
	if m.hist == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: histogram %q bucket bounds not ascending", name))
			}
		}
		m.hist = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
	}
	return m.hist
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.metrics)
}

// TimeBuckets is a general-purpose set of histogram bounds for time-valued
// (picosecond) observations: a 1–2–5 decade ladder from 1 µs to 1 s. It
// suits the response-time and jitter distributions of millisecond-scale
// real-time task sets.
func TimeBuckets() []int64 {
	const us = int64(1_000_000) // 1 µs in ps
	var bounds []int64
	for _, decade := range []int64{1, 10, 100, 1_000, 10_000, 100_000} {
		for _, step := range []int64{1, 2, 5} {
			bounds = append(bounds, step*decade*us)
		}
	}
	return append(bounds, 1_000_000*us) // 1 s
}

// families groups the registered metrics by name, preserving registration
// order inside each family and ordering families by the registration order
// of their first member. Exports iterate families so Prometheus text keeps
// each family contiguous as the exposition format requires.
func (r *Registry) families() [][]*metric {
	if r == nil {
		return nil
	}
	order := map[string]int{}
	var names []string
	for _, m := range r.metrics {
		if _, ok := order[m.name]; !ok {
			order[m.name] = len(names)
			names = append(names, m.name)
		}
	}
	fams := make([][]*metric, len(names))
	for _, m := range r.metrics {
		i := order[m.name]
		fams[i] = append(fams[i], m)
	}
	return fams
}
