package metrics

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if hw := g.HighWater(); hw != 7 {
		t.Fatalf("high-water = %d, want 7", hw)
	}
	if r.Len() != 2 {
		t.Fatalf("registry has %d metrics, want 2", r.Len())
	}
}

func TestRegistryIdempotentAndLabelled(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("task", "a"))
	b := r.Counter("x_total", "", L("task", "b"))
	if a == b {
		t.Fatal("different label sets share an instrument")
	}
	if again := r.Counter("x_total", "", L("task", "a")); again != a {
		t.Fatal("re-registration returned a new instrument")
	}
	if r.Len() != 2 {
		t.Fatalf("registry has %d metrics, want 2", r.Len())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{1, 2})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || g.HighWater() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ps", "latency", []int64{10, 20, 50})
	for _, v := range []int64{5, 10, 11, 60, 60, 19} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 165 {
		t.Fatalf("sum = %d, want 165", h.Sum())
	}
	if h.Min() != 5 || h.Max() != 60 {
		t.Fatalf("min/max = %d/%d, want 5/60", h.Min(), h.Max())
	}
	s := r.Snapshot()
	m, ok := s.Get("lat_ps")
	if !ok || m.Histogram == nil {
		t.Fatal("histogram missing from snapshot")
	}
	wantBuckets := []uint64{2, 2, 0} // <=10: {5,10}; <=20: {11,19}; <=50: none
	for i, want := range wantBuckets {
		if got := m.Histogram.Buckets[i].Count; got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if m.Histogram.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", m.Histogram.Overflow)
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Errorf("p50 = %d, want bucket bound 20", q)
	}
	if q := h.Quantile(1); q != 60 {
		t.Errorf("p100 = %d, want max 60", q)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []int64{10, 10})
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_delta_cycles_total", "delta cycles").Add(3)
	r.Gauge("rtos_ready_depth", "ready tasks", L("cpu", "cpu0")).Set(2)
	h := r.Histogram("resp_ps", "response time", []int64{10, 20}, L("task", "a"))
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP sim_delta_cycles_total delta cycles",
		"# TYPE sim_delta_cycles_total counter",
		"sim_delta_cycles_total 3",
		`rtos_ready_depth{cpu="cpu0"} 2`,
		`rtos_ready_depth_highwater{cpu="cpu0"} 2`,
		`resp_ps_bucket{task="a",le="10"} 1`,
		`resp_ps_bucket{task="a",le="20"} 2`,
		`resp_ps_bucket{task="a",le="+Inf"} 3`,
		`resp_ps_sum{task="a"} 119`,
		`resp_ps_count{task="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help text").Inc()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "c_total"`, `"kind": "counter"`, `"value": 1`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON missing %q\n%s", want, b.String())
		}
	}
}

func TestTimeBucketsAscending(t *testing.T) {
	b := TimeBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
}

// TestRecordPathAllocationFree pins the zero-allocation guarantee of the
// record path: with instruments registered up front, Inc/Add/Set/Observe
// must never touch the heap.
func TestRecordPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", TimeBuckets())
	var v int64
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(v)
		g.Add(1)
		h.Observe(v * 1_000_000)
		v++
	}); avg > 0 {
		t.Errorf("record path allocates %.2f objects per round, want 0", avg)
	}
}
