package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BucketSnapshot is one histogram bucket in a snapshot: the number of
// observations at or below UpperBound (non-cumulative; the exporter
// cumulates for Prometheus).
type BucketSnapshot struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count    uint64           `json:"count"`
	Sum      int64            `json:"sum"`
	Min      int64            `json:"min"`
	Max      int64            `json:"max"`
	Mean     float64          `json:"mean"`
	Buckets  []BucketSnapshot `json:"buckets"`
	Overflow uint64           `json:"overflow"`
}

// MetricSnapshot is the frozen state of one instrument.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`

	// Value is the counter count or gauge value, always emitted so a zero
	// counter stays distinguishable from an absent one; HighWater
	// accompanies gauges.
	Value     int64              `json:"value"`
	HighWater int64              `json:"highWater,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot is the frozen state of a whole registry, in registration order.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot freezes the current state of every registered metric. It is safe
// to take mid-run, between simulation steps, and allocates only the snapshot
// itself (never mutating instrument state).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.Metrics = make([]MetricSnapshot, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms := MetricSnapshot{Name: m.name, Kind: m.kind.String(), Help: m.help, Labels: m.labels}
		switch m.kind {
		case KindCounter:
			ms.Value = int64(m.counter.Value())
		case KindGauge:
			ms.Value = m.gauge.Value()
			ms.HighWater = m.gauge.HighWater()
		case KindHistogram:
			h := m.hist
			hs := &HistogramSnapshot{
				Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
				Overflow: h.counts[len(h.bounds)],
			}
			hs.Buckets = make([]BucketSnapshot, len(h.bounds))
			for i, b := range h.bounds {
				hs.Buckets[i] = BucketSnapshot{UpperBound: b, Count: h.counts[i]}
			}
			ms.Histogram = hs
		}
		s.Metrics = append(s.Metrics, ms)
	}
	return s
}

// Get returns the snapshot of the named metric (first label-set match wins
// when name is ambiguous), and false when absent.
func (s Snapshot) Get(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// WriteJSON writes the registry snapshot as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, cumulative _bucket
// series plus _sum and _count for histograms. Gauges additionally expose
// their high-water mark as a companion `<name>_highwater` gauge.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.families() {
		head := fam[0]
		if head.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", head.name, head.help); err != nil {
				return err
			}
		}
		typ := "counter"
		switch head.kind {
		case KindGauge:
			typ = "gauge"
		case KindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", head.name, typ); err != nil {
			return err
		}
		for _, m := range fam {
			if err := writePromMetric(w, m); err != nil {
				return err
			}
		}
	}
	// High-water companions come after the main families so each family
	// block stays contiguous.
	for _, fam := range r.families() {
		if fam[0].kind != KindGauge {
			continue
		}
		name := fam[0].name + "_highwater"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for _, m := range fam {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(m.labels, "", 0), m.gauge.HighWater()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromMetric writes one instrument's sample lines.
func writePromMetric(w io.Writer, m *metric) error {
	switch m.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, promLabels(m.labels, "", 0), m.counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, promLabels(m.labels, "", 0), m.gauge.Value())
		return err
	case KindHistogram:
		h := m.hist
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.name, promLabels(m.labels, "le", b), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, promLabelsInf(m.labels), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, promLabels(m.labels, "", 0), h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, promLabels(m.labels, "", 0), h.Count())
		return err
	}
	return nil
}

// promLabels renders a label set, optionally appending an le bucket label.
func promLabels(labels []Label, le string, bound int64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(strconv.FormatInt(bound, 10))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelsInf renders a label set with le="+Inf".
func promLabelsInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// escapeLabel escapes backslash, double-quote and newline per the text
// exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
