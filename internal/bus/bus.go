// Package bus models shared communication resources — the "communications
// network" the paper lists among the physical constraints that high-level
// simulation must take into account for design-space exploration (section
// 2: "it does not take into account the influence of implementation choices
// or physical constraints (processor, RTOS, communications network)").
//
// A Bus serializes transfers: each transfer holds the bus for a duration
// proportional to its size plus a fixed arbitration overhead; contending
// actors queue by priority (FIFO among equals). A Channel layers a typed
// message queue on top of a bus, so moving a message between processors
// costs simulated transfer time on the shared medium — turning the
// zero-time MCSE queue of the functional model into an implementation-level
// link.
package bus

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Sleeper is the actor-side ability to let simulated time pass while a
// transfer occupies the bus. rtos.TaskCtx satisfies it with Delay (the
// processor is free during a DMA-style transfer) and rtos.HWCtx with Wait.
type Sleeper interface {
	SleepFor(d sim.Time)
}

// Config carries a bus's physical parameters.
type Config struct {
	// PerByte is the transfer time per byte (1/bandwidth).
	PerByte sim.Time
	// Arbitration is the fixed cost to acquire the bus for one transfer.
	Arbitration sim.Time
}

// Bus is a shared, serialized transfer medium.
type Bus struct {
	rec  *trace.Recorder
	name string
	cfg  Config

	mu *comm.Mutex

	transfers  uint64
	bytesMoved uint64
	busyTime   sim.Time
}

// New creates a bus. rec may be nil to disable tracing.
func New(rec *trace.Recorder, name string, cfg Config) *Bus {
	if cfg.PerByte < 0 || cfg.Arbitration < 0 {
		panic("bus: negative timing parameter")
	}
	return &Bus{
		rec: rec, name: name, cfg: cfg,
		mu: comm.NewMutex(rec, name+".arbiter"),
	}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Transfers returns the number of completed transfers.
func (b *Bus) Transfers() uint64 { return b.transfers }

// BytesMoved returns the total payload volume.
func (b *Bus) BytesMoved() uint64 { return b.bytesMoved }

// BusyTime returns the cumulative time the bus spent transferring.
func (b *Bus) BusyTime() sim.Time { return b.busyTime }

// TransferTime returns the bus occupancy of one transfer of n bytes.
func (b *Bus) TransferTime(n int) sim.Time {
	return b.cfg.Arbitration + sim.Time(n)*b.cfg.PerByte
}

// Transfer moves n bytes over the bus on behalf of actor a, blocking for
// arbitration (priority-ordered wait on the bus mutex) and then for the
// transfer duration. The actor must implement Sleeper; it does not consume
// its processor during the transfer (DMA-style).
func (b *Bus) Transfer(a comm.Actor, n int) {
	if n < 0 {
		panic("bus: negative transfer size")
	}
	s, ok := a.(Sleeper)
	if !ok {
		panic(fmt.Sprintf("bus: actor %q cannot sleep for a transfer (no SleepFor)", a.Name()))
	}
	b.mu.Lock(a)
	if d := b.TransferTime(n); d > 0 {
		b.rec.Depth(b.name, 1, 1)
		s.SleepFor(d)
		b.rec.Depth(b.name, 0, 1)
		b.busyTime += d
	}
	b.transfers++
	b.bytesMoved += uint64(n)
	b.rec.Access(a.Name(), b.name, trace.AccessWrite)
	b.mu.Unlock(a)
}

// Channel is a typed message queue whose Send pays for the transfer on a
// shared bus: the sending actor arbitrates for the bus, the payload
// occupies it for size*PerByte, and only then does the message land in the
// receiver-side queue.
type Channel[T any] struct {
	bus   *Bus
	queue *comm.Queue[T]
	size  func(T) int
}

// NewChannel creates a channel of the given capacity over the bus; size
// returns a message's payload size in bytes (nil means fixed 1 byte).
func NewChannel[T any](b *Bus, name string, capacity int, size func(T) int) *Channel[T] {
	if size == nil {
		size = func(T) int { return 1 }
	}
	return &Channel[T]{
		bus:   b,
		queue: comm.NewQueue[T](b.rec, name, capacity),
		size:  size,
	}
}

// Name returns the channel name.
func (c *Channel[T]) Name() string { return c.queue.Name() }

// Queue exposes the receiver-side queue (for Len/Cap inspection).
func (c *Channel[T]) Queue() *comm.Queue[T] { return c.queue }

// Send transfers the message over the bus, then enqueues it (blocking while
// the destination queue is full).
func (c *Channel[T]) Send(a comm.Actor, v T) {
	c.bus.Transfer(a, c.size(v))
	c.queue.Put(a, v)
}

// Recv dequeues the oldest message, blocking while the queue is empty.
// Reception costs no bus time (the payload already crossed on Send).
func (c *Channel[T]) Recv(a comm.Actor) T {
	return c.queue.Get(a)
}

// String describes the channel configuration.
func (c *Channel[T]) String() string {
	return fmt.Sprintf("channel %s over bus %s (cap %d)", c.queue.Name(), c.bus.name, c.queue.Cap())
}
