package bus_test

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func busFixture(perByte, arb sim.Time) (*rtos.System, *bus.Bus) {
	sys := rtos.NewSystem()
	b := bus.New(sys.Rec, "bus0", bus.Config{PerByte: perByte, Arbitration: arb})
	return sys, b
}

func TestTransferTiming(t *testing.T) {
	sys, b := busFixture(sim.Us, 10*sim.Us)
	cpu := sys.NewProcessor("cpu", rtos.Config{})
	var end sim.Time
	cpu.NewTask("t", rtos.TaskConfig{}, func(c *rtos.TaskCtx) {
		b.Transfer(c, 100) // 10 + 100*1 = 110us
		end = c.Now()
	})
	sys.Run()
	if end != 110*sim.Us {
		t.Fatalf("transfer ended at %v, want 110us", end)
	}
	if b.Transfers() != 1 || b.BytesMoved() != 100 || b.BusyTime() != 110*sim.Us {
		t.Fatalf("stats: %d transfers, %d bytes, busy %v", b.Transfers(), b.BytesMoved(), b.BusyTime())
	}
}

func TestTransfersSerialize(t *testing.T) {
	// Two hardware masters contend: the second transfer starts only after
	// the first releases the bus.
	sys, b := busFixture(sim.Us, 0)
	var aEnd, bEnd sim.Time
	sys.NewHWTask("dma-a", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		b.Transfer(c, 100)
		aEnd = c.Now()
	})
	sys.NewHWTask("dma-b", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		c.Wait(10 * sim.Us) // arrives mid-transfer
		b.Transfer(c, 50)
		bEnd = c.Now()
	})
	sys.Run()
	if aEnd != 100*sim.Us {
		t.Fatalf("a ended at %v, want 100us", aEnd)
	}
	if bEnd != 150*sim.Us {
		t.Fatalf("b ended at %v, want 150us (serialized after a)", bEnd)
	}
}

func TestArbitrationByPriority(t *testing.T) {
	// While the bus is held, two contenders queue; the higher-priority one
	// wins the next slot.
	sys, b := busFixture(sim.Us, 0)
	var order []string
	transfer := func(name string, prio int, at sim.Time) {
		sys.NewHWTask(name, rtos.HWConfig{Priority: prio, StartAt: at}, func(c *rtos.HWCtx) {
			b.Transfer(c, 10)
			order = append(order, name)
		})
	}
	transfer("holder", 0, 0)
	transfer("low", 1, 2*sim.Us)
	transfer("high", 9, 3*sim.Us)
	sys.Run()
	if len(order) != 3 || order[0] != "holder" || order[1] != "high" || order[2] != "low" {
		t.Fatalf("order = %v", order)
	}
}

func TestTaskFreesCPUDuringTransfer(t *testing.T) {
	// A DMA-style transfer must not consume the processor: a lower-priority
	// task runs while the transferring task sleeps on the bus.
	sys, b := busFixture(10*sim.Us, 0)
	cpu := sys.NewProcessor("cpu", rtos.Config{})
	var loRan sim.Time
	cpu.NewTask("xfer", rtos.TaskConfig{Priority: 9}, func(c *rtos.TaskCtx) {
		c.Execute(10 * sim.Us)
		b.Transfer(c, 10) // 100us on the bus, CPU free
		c.Execute(10 * sim.Us)
	})
	cpu.NewTask("lo", rtos.TaskConfig{Priority: 1}, func(c *rtos.TaskCtx) {
		c.Execute(50 * sim.Us)
		loRan = c.Now()
	})
	sys.Run()
	// lo runs during the transfer window [10,110]: finishes at 60us.
	if loRan != 60*sim.Us {
		t.Fatalf("lo finished at %v, want 60us (CPU free during DMA)", loRan)
	}
}

func TestChannelEndToEnd(t *testing.T) {
	sys, b := busFixture(sim.Us, 5*sim.Us)
	cpu0 := sys.NewProcessor("cpu0", rtos.Config{})
	cpu1 := sys.NewProcessor("cpu1", rtos.Config{})
	ch := bus.NewChannel(b, "link", 2, func(v int) int { return 64 })
	var got []int
	var recvAt []sim.Time
	cpu0.NewTask("sender", rtos.TaskConfig{}, func(c *rtos.TaskCtx) {
		for i := 1; i <= 3; i++ {
			c.Execute(10 * sim.Us)
			ch.Send(c, i)
		}
	})
	cpu1.NewTask("receiver", rtos.TaskConfig{}, func(c *rtos.TaskCtx) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(c))
			recvAt = append(recvAt, c.Now())
		}
	})
	sys.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	// First message: 10us compute + 69us transfer = arrives at 79us.
	if recvAt[0] != 79*sim.Us {
		t.Fatalf("first arrival at %v, want 79us", recvAt[0])
	}
	if b.Transfers() != 3 || b.BytesMoved() != 192 {
		t.Fatalf("bus stats: %d/%d", b.Transfers(), b.BytesMoved())
	}
	if ch.Queue().Cap() != 2 || ch.Name() != "link" {
		t.Fatal("channel accessors wrong")
	}
}

func TestBusUtilizationStats(t *testing.T) {
	sys, b := busFixture(sim.Us, 0)
	sys.NewHWTask("dma", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		b.Transfer(c, 250) // 250us of a 1ms window
		c.Wait(750 * sim.Us)
	})
	sys.RunUntil(sim.Ms)
	st := sys.Stats(sim.Ms)
	sys.Shutdown()
	o, ok := st.ObjectByName("bus0")
	if !ok {
		t.Fatal("bus missing from stats")
	}
	if got := o.UtilizationRatio(); got != 0.25 {
		t.Fatalf("bus utilization = %v, want 0.25", got)
	}
}

func TestBusAccessors(t *testing.T) {
	sys, b := busFixture(sim.Ns, 0)
	if b.Name() != "bus0" {
		t.Fatal("bus name wrong")
	}
	ch := bus.NewChannel[int](b, "ch", 3, nil) // nil size: 1 byte per message
	if !strings.Contains(ch.String(), "ch") || !strings.Contains(ch.String(), "bus0") {
		t.Fatalf("channel String = %q", ch.String())
	}
	var arrived sim.Time
	sys.NewHWTask("a", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		ch.Send(c, 5) // 1 byte: 1ns on the bus
	})
	sys.NewHWTask("b", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		_ = ch.Recv(c)
		arrived = c.Now()
	})
	sys.Run()
	if arrived != sim.Ns {
		t.Fatalf("default-size message arrived at %v, want 1ns", arrived)
	}
}

func TestBusValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative per-byte", func() { bus.New(nil, "b", bus.Config{PerByte: -1}) })
	mustPanic("negative arbitration", func() { bus.New(nil, "b", bus.Config{Arbitration: -1}) })
	sys, b := busFixture(sim.Us, 0)
	cpu := sys.NewProcessor("cpu", rtos.Config{})
	cpu.NewTask("t", rtos.TaskConfig{}, func(c *rtos.TaskCtx) {
		b.Transfer(c, -1)
	})
	defer func() {
		if recover() == nil {
			t.Error("negative size: expected panic")
		}
	}()
	sys.Run()
}
