package mpeg2

import (
	"testing"

	"repro/internal/rtos"
	"repro/internal/sim"
)

func TestSoCTopology(t *testing.T) {
	s := Build(Config{})
	if s.TaskCount != 18 {
		t.Fatalf("task count = %d, want 18 (the paper's case study)", s.TaskCount)
	}
	if n := len(s.Sys.Processors()); n != 3 {
		t.Fatalf("software processors = %d, want 3", n)
	}
	if n := len(s.Sys.HWTasks()); n != 5 {
		t.Fatalf("hardware tasks = %d, want 5", n)
	}
	sw := 0
	for _, cpu := range s.Sys.Processors() {
		sw += len(cpu.Tasks())
	}
	if sw != 13 {
		t.Fatalf("software tasks = %d, want 13", sw)
	}
	s.Sys.Shutdown()
}

func TestSoCRunsTenFrames(t *testing.T) {
	res := Run(Config{}, 10*FramePeriod)
	// 10 frames x 8 slices captured; the pipeline keeps a few in flight.
	if res.EncodedSlices < 70 || res.EncodedSlices > 80 {
		t.Errorf("encoded slices = %d, want ~76", res.EncodedSlices)
	}
	if res.DisplayedSlices < 70 || res.DisplayedSlices > 80 {
		t.Errorf("displayed slices = %d, want ~76", res.DisplayedSlices)
	}
	if res.Violations != 0 {
		t.Errorf("timing violations = %d, want 0 at nominal load", res.Violations)
	}
	// The encoder CPU is the busiest; all SW processors do real work.
	if res.Load["cpu-enc"] < 0.5 {
		t.Errorf("cpu-enc load = %.2f, want > 0.5", res.Load["cpu-enc"])
	}
	if res.Load["cpu-dec"] < 0.5 {
		t.Errorf("cpu-dec load = %.2f, want > 0.5", res.Load["cpu-dec"])
	}
	if res.Load["cpu-ctrl"] <= 0 || res.Load["cpu-ctrl"] > 0.3 {
		t.Errorf("cpu-ctrl load = %.2f, want small but non-zero", res.Load["cpu-ctrl"])
	}
	// RTOS overhead is charged on every software processor.
	for cpu, ov := range res.OverheadRatio {
		if ov <= 0 {
			t.Errorf("%s overhead ratio = %v, want > 0", cpu, ov)
		}
	}
	if res.EncodeWorst <= 0 || res.EncodeWorst > 2*FramePeriod {
		t.Errorf("worst encode latency = %v", res.EncodeWorst)
	}
}

func TestSoCOverload(t *testing.T) {
	// At 1.6x encoder load the encode pipeline can no longer keep up with
	// the camera: latency constraints must fire.
	res := Run(Config{Load: 1.6}, 10*FramePeriod)
	if res.Violations == 0 {
		t.Error("no violations at 1.6x load; the encoder should be saturated")
	}
	nominal := Run(Config{}, 10*FramePeriod)
	if res.EncodedSlices >= nominal.EncodedSlices {
		t.Errorf("overloaded encoder produced %d slices >= nominal %d",
			res.EncodedSlices, nominal.EncodedSlices)
	}
}

func TestSoCEngineEquivalence(t *testing.T) {
	a := Run(Config{Engine: rtos.EngineProcedural}, 5*FramePeriod)
	b := Run(Config{Engine: rtos.EngineThreaded}, 5*FramePeriod)
	if a.EncodedSlices != b.EncodedSlices || a.DisplayedSlices != b.DisplayedSlices {
		t.Errorf("engines disagree: enc %d/%d disp %d/%d",
			a.EncodedSlices, b.EncodedSlices, a.DisplayedSlices, b.DisplayedSlices)
	}
	if a.EncodeWorst != b.EncodeWorst || a.DecodeWorst != b.DecodeWorst {
		t.Errorf("latencies disagree: enc %v/%v dec %v/%v",
			a.EncodeWorst, b.EncodeWorst, a.DecodeWorst, b.DecodeWorst)
	}
	if a.Activations >= b.Activations {
		t.Errorf("procedural activations %d not fewer than threaded %d",
			a.Activations, b.Activations)
	}
}

func TestSoCBusAblation(t *testing.T) {
	// Routing the processor-crossing queues over a shared interconnect
	// degrades the pipeline as the bus slows: utilization rises, and at some
	// point the latency constraints fire — the communications-network
	// dimension of design-space exploration.
	ideal := Run(Config{}, 10*FramePeriod)
	if ideal.BusTransfers != 0 || ideal.BusUtilization != 0 {
		t.Fatalf("ideal run reports bus stats: %+v", ideal)
	}
	fast := Run(Config{BusPerByte: 10 * sim.Ns}, 10*FramePeriod)
	if fast.BusTransfers == 0 {
		t.Fatal("fast bus saw no transfers")
	}
	if fast.Violations != 0 {
		t.Errorf("fast bus (82us/slice hop) broke the pipeline: %d violations", fast.Violations)
	}
	slow := Run(Config{BusPerByte: 400 * sim.Ns}, 10*FramePeriod)
	if slow.BusUtilization <= fast.BusUtilization || slow.BusUtilization < 0.9 {
		t.Errorf("bus did not saturate: fast %.3f, slow %.3f",
			fast.BusUtilization, slow.BusUtilization)
	}
	// The queues' backpressure throttles the camera, so latency constraints
	// stay met while throughput collapses — the saturation shows up as lost
	// frames and a many-fold latency increase.
	if slow.DisplayedSlices*2 >= fast.DisplayedSlices {
		t.Errorf("slow bus displayed %d slices, want < half of fast %d",
			slow.DisplayedSlices, fast.DisplayedSlices)
	}
	if slow.EncodeWorst < 4*fast.EncodeWorst {
		t.Errorf("worst encode latency fast %v -> slow %v: expected a large increase",
			fast.EncodeWorst, slow.EncodeWorst)
	}
}

func TestSoCOverheadSensitivity(t *testing.T) {
	// Raising the RTOS overhead from 5us to 500us visibly increases the
	// overhead ratio on the software processors (the design-space
	// exploration the model exists for).
	small := Run(Config{Overhead: 5 * sim.Us}, 5*FramePeriod)
	big := Run(Config{Overhead: 500 * sim.Us}, 5*FramePeriod)
	if big.OverheadRatio["cpu-enc"] <= small.OverheadRatio["cpu-enc"] {
		t.Errorf("overhead ratio did not grow: %v -> %v",
			small.OverheadRatio["cpu-enc"], big.OverheadRatio["cpu-enc"])
	}
}
