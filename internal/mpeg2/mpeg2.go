// Package mpeg2 models the paper's section 5 case study: "a video MPEG-2
// compressing and decompressing SoC. The system is composed of 18 tasks
// implemented on six processors, three of them are software processors with
// a RTOS model."
//
// The pipeline is synthetic — the paper publishes no numbers for it, only
// that the RTOS model scales to it — but the topology is faithful: three
// software processors running the RTOS model (controller, encoder, decoder)
// plus hardware blocks (video in/out DMA, bitstream I/O, memory arbiter),
// 18 tasks in total, communicating through MCSE queues, events and shared
// variables. Task durations are annotated times for a 25 fps stream
// processed in 8 slices per frame.
package mpeg2

import (
	"repro/internal/bus"
	"repro/internal/comm"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// FramePeriod is the 25 fps frame period.
const FramePeriod = 40 * sim.Ms

// SlicesPerFrame is the number of slices (macroblock rows) per frame.
const SlicesPerFrame = 8

// SlicePeriod is the cadence at which the camera emits slices.
const SlicePeriod = FramePeriod / SlicesPerFrame

// Slice is the unit of work flowing through the pipelines.
type Slice struct {
	Frame int
	Index int
	// Stamp is the capture time, used for end-to-end latency constraints.
	Stamp sim.Time
}

// SoC is the elaborated system with the observation points used by the
// experiments and the example.
type SoC struct {
	Sys *rtos.System

	CtrlCPU, EncCPU, DecCPU *rtos.Processor

	// EncodedSlices / DisplayedSlices count pipeline completions.
	EncodedSlices   int
	DisplayedSlices int

	// EncodeLatency and DecodeLatency monitor the end-to-end pipeline
	// latency constraints.
	EncodeLatency *rtos.Constraint
	DecodeLatency *rtos.Constraint

	// Interconnect is the shared on-chip bus, nil when the configuration
	// keeps zero-time queues.
	Interconnect *bus.Bus

	// TaskCount is the total number of tasks (software + hardware).
	TaskCount int
}

// SliceBytes is the modelled payload of one slice crossing the on-chip
// interconnect.
const SliceBytes = 8192

// Config parameterizes the SoC build.
type Config struct {
	Engine rtos.EngineKind
	// Overhead is the uniform RTOS overhead on the three software
	// processors; defaults to 5µs.
	Overhead sim.Time
	// QuantScale stresses the encoder: execution times of the quantizer
	// scale with it. 1.0 by default.
	Load float64
	// BusPerByte, when positive, routes every processor-crossing queue over
	// a shared on-chip bus with that transfer time per byte (plus a 1µs
	// arbitration cost); zero keeps the functional model's zero-time
	// queues. At 8KiB per slice, 1ns/byte costs ~8.2µs of bus per hop.
	BusPerByte sim.Time
}

// link abstracts a slice conduit: a zero-time MCSE queue within one
// processor domain, or a bus-backed channel across domains.
type link interface {
	put(a comm.Actor, s Slice)
	get(a comm.Actor) Slice
}

type queueLink struct{ q *comm.Queue[Slice] }

func (l queueLink) put(a comm.Actor, s Slice) { l.q.Put(a, s) }
func (l queueLink) get(a comm.Actor) Slice    { return l.q.Get(a) }

type busLink struct{ ch *bus.Channel[Slice] }

func (l busLink) put(a comm.Actor, s Slice) { l.ch.Send(a, s) }
func (l busLink) get(a comm.Actor) Slice    { return l.ch.Recv(a) }

// Build elaborates the SoC without running it.
func Build(cfg Config) *SoC {
	if cfg.Overhead == 0 {
		cfg.Overhead = 5 * sim.Us
	}
	if cfg.Load == 0 {
		cfg.Load = 1.0
	}
	scale := func(d sim.Time) sim.Time { return d.Scale(cfg.Load) }

	s := &SoC{Sys: rtos.NewSystem()}
	sys := s.Sys
	rcfg := rtos.Config{
		Engine:    cfg.Engine,
		Policy:    rtos.PriorityPreemptive{},
		Overheads: rtos.UniformOverheads(cfg.Overhead),
	}
	s.CtrlCPU = sys.NewProcessor("cpu-ctrl", rcfg)
	s.EncCPU = sys.NewProcessor("cpu-enc", rcfg)
	s.DecCPU = sys.NewProcessor("cpu-dec", rcfg)

	rec := sys.Rec
	// Processor-crossing conduits go over the shared interconnect when a
	// bus is configured; stage-internal queues are always zero-time.
	var interconnect *bus.Bus
	xlink := func(name string, capacity int) link {
		if cfg.BusPerByte <= 0 {
			return queueLink{comm.NewQueue[Slice](rec, name, capacity)}
		}
		if interconnect == nil {
			interconnect = bus.New(rec, "interconnect", bus.Config{
				PerByte:     cfg.BusPerByte,
				Arbitration: sim.Us,
			})
			s.Interconnect = interconnect
		}
		return busLink{bus.NewChannel(interconnect, name, capacity, func(Slice) int { return SliceBytes })}
	}
	local := func(name string, capacity int) link {
		return queueLink{comm.NewQueue[Slice](rec, name, capacity)}
	}

	// Encode path.
	qRaw := xlink("q_raw", 4) // VideoIn -> cpu-enc
	qME := local("q_me", 2)   // within cpu-enc
	qDCT := local("q_dct", 2) // within cpu-enc
	qQ := local("q_q", 2)     // within cpu-enc
	qVLC := xlink("q_vlc", 4) // cpu-enc -> cpu-ctrl
	qTx := xlink("q_tx", 8)   // cpu-ctrl -> BitstreamOut
	// Decode path.
	qRx := xlink("q_rx", 8)     // BitstreamIn -> cpu-ctrl
	qDmx := xlink("q_dmx", 4)   // cpu-ctrl -> cpu-dec
	qVLD := local("q_vld", 2)   // within cpu-dec
	qIQ := local("q_iq", 2)     // within cpu-dec
	qIDCT := local("q_idct", 2) // within cpu-dec
	qDisp := xlink("q_disp", 4) // cpu-dec -> VideoOut

	// Control-plane relations.
	quantScale := comm.NewShared(rec, "quantScale", 16)
	heartbeat := comm.NewShared(rec, "heartbeat", 0)
	bitrateFeedback := comm.NewEvent(rec, "bitrateFeedback", comm.Counter)
	memBus := comm.NewMutex(rec, "memBus")

	s.EncodeLatency = sys.Constraints.NewLatency("encode.e2e", 2*FramePeriod)
	s.DecodeLatency = sys.Constraints.NewLatency("decode.e2e", 2*FramePeriod)

	stage := func(cpu *rtos.Processor, name string, prio int, in, out link, cost sim.Time, hook func(c *rtos.TaskCtx, sl Slice)) {
		cpu.NewTask(name, rtos.TaskConfig{Priority: prio}, func(c *rtos.TaskCtx) {
			for {
				sl := in.get(c)
				c.Execute(cost)
				if hook != nil {
					hook(c, sl)
				}
				if out != nil {
					out.put(c, sl)
				}
			}
		})
		s.TaskCount++
	}

	// --- cpu-enc: 4 tasks -------------------------------------------------
	stage(s.EncCPU, "MotionEst", 4, qRaw, qME, scale(2*sim.Ms), func(c *rtos.TaskCtx, sl Slice) {
		// Reference-frame fetch through the shared memory bus.
		memBus.Lock(c)
		c.Execute(100 * sim.Us)
		memBus.Unlock(c)
	})
	stage(s.EncCPU, "DCT", 3, qME, qDCT, scale(1*sim.Ms), nil)
	stage(s.EncCPU, "Quant", 3, qDCT, qQ, scale(500*sim.Us), func(c *rtos.TaskCtx, sl Slice) {
		_ = quantScale.Read(c)
	})
	stage(s.EncCPU, "VLC", 2, qQ, qVLC, scale(800*sim.Us), nil)

	// --- cpu-dec: 4 tasks -------------------------------------------------
	stage(s.DecCPU, "VLD", 4, qDmx, qVLD, 800*sim.Us, nil)
	stage(s.DecCPU, "IQuant", 3, qVLD, qIQ, 500*sim.Us, nil)
	stage(s.DecCPU, "IDCT", 3, qIQ, qIDCT, 1*sim.Ms, nil)
	stage(s.DecCPU, "MotionComp", 2, qIDCT, qDisp, 1500*sim.Us, func(c *rtos.TaskCtx, sl Slice) {
		memBus.Lock(c)
		c.Execute(100 * sim.Us)
		memBus.Unlock(c)
	})

	// --- cpu-ctrl: 5 tasks ------------------------------------------------
	// Mux finalizes encoded slices into the transport queue and reports
	// bitrate to RateControl.
	s.CtrlCPU.NewTask("Mux", rtos.TaskConfig{Priority: 4}, func(c *rtos.TaskCtx) {
		for {
			sl := qVLC.get(c)
			c.Execute(200 * sim.Us)
			s.EncodedSlices++
			s.EncodeLatency.Stop()
			qTx.put(c, sl)
			if sl.Index == SlicesPerFrame-1 {
				bitrateFeedback.Signal(c)
			}
		}
	})
	s.TaskCount++
	stage(s.CtrlCPU, "Demux", 4, qRx, qDmx, 200*sim.Us, nil)
	s.CtrlCPU.NewTask("RateControl", rtos.TaskConfig{Priority: 3}, func(c *rtos.TaskCtx) {
		for {
			bitrateFeedback.Wait(c)
			c.Execute(300 * sim.Us)
			q := quantScale.Read(c)
			if q < 31 {
				quantScale.Write(c, q+1)
			}
		}
	})
	s.TaskCount++
	s.CtrlCPU.NewPeriodicTask("Controller", rtos.TaskConfig{Priority: 5, Period: FramePeriod}, func(c *rtos.TaskCtx, cycle int) {
		c.Execute(500 * sim.Us)
		heartbeat.Write(c, cycle)
	})
	s.TaskCount++
	s.CtrlCPU.NewPeriodicTask("Watchdog", rtos.TaskConfig{Priority: 1, Period: 100 * sim.Ms}, func(c *rtos.TaskCtx, cycle int) {
		c.Execute(100 * sim.Us)
		_ = heartbeat.Read(c)
	})
	s.TaskCount++

	// --- hardware: 5 tasks ------------------------------------------------
	sys.NewHWTask("VideoIn", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		for frame := 0; ; frame++ {
			for idx := 0; idx < SlicesPerFrame; idx++ {
				c.Wait(SlicePeriod)
				s.EncodeLatency.Start()
				qRaw.put(c, Slice{Frame: frame, Index: idx, Stamp: c.Now()})
			}
		}
	})
	s.TaskCount++
	sys.NewHWTask("BitstreamOut", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		for {
			_ = qTx.get(c)
			c.Wait(300 * sim.Us) // serialization on the transport link
		}
	})
	s.TaskCount++
	sys.NewHWTask("BitstreamIn", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		for frame := 0; ; frame++ {
			for idx := 0; idx < SlicesPerFrame; idx++ {
				c.Wait(SlicePeriod)
				s.DecodeLatency.Start()
				qRx.put(c, Slice{Frame: frame, Index: idx, Stamp: c.Now()})
			}
		}
	})
	s.TaskCount++
	sys.NewHWTask("VideoOut", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		for {
			_ = qDisp.get(c)
			s.DecodeLatency.Stop()
			s.DisplayedSlices++
			c.Wait(200 * sim.Us) // raster-out
		}
	})
	s.TaskCount++
	sys.NewHWTask("MemArbiter", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		// Periodic refresh holds the memory bus briefly, disturbing the
		// software stages that fetch reference frames.
		for {
			c.Wait(2 * sim.Ms)
			memBus.Lock(c)
			c.Wait(50 * sim.Us)
			memBus.Unlock(c)
		}
	})
	s.TaskCount++

	return s
}

// Result summarizes a run for the E7 experiment.
type Result struct {
	Horizon         sim.Time
	EncodedSlices   int
	DisplayedSlices int
	EncodeWorst     sim.Time
	DecodeWorst     sim.Time
	Violations      int
	// Load maps each software processor to its activity ratio.
	Load map[string]float64
	// OverheadRatio maps each software processor to its RTOS overhead
	// share.
	OverheadRatio map[string]float64
	TaskCount     int
	Activations   uint64
	// BusUtilization is the interconnect's busy ratio (0 without a bus).
	BusUtilization float64
	// BusTransfers counts interconnect transfers.
	BusTransfers uint64
}

// Run builds and simulates the SoC for the given horizon.
func Run(cfg Config, horizon sim.Time) Result {
	s := Build(cfg)
	s.Sys.RunUntil(horizon)
	res := Result{
		Horizon:         horizon,
		EncodedSlices:   s.EncodedSlices,
		DisplayedSlices: s.DisplayedSlices,
		EncodeWorst:     s.EncodeLatency.Worst(),
		DecodeWorst:     s.DecodeLatency.Worst(),
		Violations:      len(s.Sys.Constraints.Violations()),
		Load:            map[string]float64{},
		OverheadRatio:   map[string]float64{},
		TaskCount:       s.TaskCount,
		Activations:     s.Sys.K.Activations(),
	}
	st := s.Sys.Stats(horizon)
	for _, cpu := range []string{"cpu-ctrl", "cpu-enc", "cpu-dec"} {
		if ps, ok := st.ProcessorByName(cpu); ok {
			res.Load[cpu] = ps.LoadRatio()
			res.OverheadRatio[cpu] = ps.OverheadRatio()
		}
	}
	if s.Interconnect != nil {
		res.BusUtilization = float64(s.Interconnect.BusyTime()) / float64(horizon)
		res.BusTransfers = s.Interconnect.Transfers()
	}
	s.Sys.Shutdown()
	return res
}
