package explore

import (
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkExplore measures full schedule-space exploration throughput on
// the priority-inversion scenario: each iteration enumerates a bounded
// frontier (parse, build, run, judge per interleaving) and reports how many
// interleavings one op covered, so ns/op divided by runs/op approximates the
// per-interleaving cost.
func BenchmarkExplore(b *testing.B) {
	base, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "inversion.json"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := New(base)
		if err != nil {
			b.Fatal(err)
		}
		eng.Cfg.MaxRuns = 16
		eng.Cfg.MaxInversion = 0 // never violated: benchmark pure enumeration
		eng.Cfg.Workers = 1
		sum, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(sum.Explored), "runs/op")
		}
	}
}

// BenchmarkTraceCodec measures the choice-trace encoder/decoder round trip,
// the per-run cost of recording and replaying decisions.
func BenchmarkTraceCodec(b *testing.B) {
	tr := Trace{}
	for i := 0; i < 64; i++ {
		tr.Decisions = append(tr.Decisions, Decision{
			Kind:  KindTie + uint8(i%2),
			Key:   uint32(i * 2654435761),
			Value: uint32(i % 7),
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := tr.Encode()
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
