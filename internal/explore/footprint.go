package explore

import (
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// Static commutativity analysis (the DPOR-style pruning rule). Two
// same-instant timed actions commute when the model elements they can touch
// are disjoint: a task's delay wakeup on cpu A cannot affect a hardware
// task's timer on an unrelated channel, so only one of their two orders is
// explored. The footprint of an action is derived from the scenario
// description — the owner's processor plus every comm object, bus, irq,
// watchdog and server its body references — which over-approximates the
// dynamic footprint, keeping the pruning sound: actions are only declared
// commuting when no interleaving of them can diverge.

// footprints maps scenario-level owners (tasks, hardware tasks, processors,
// irqs, servers, watchdogs, comm objects) to their resource sets.
type footprints struct {
	owners map[string][]string
}

// newFootprints derives the owner resource sets from a scenario description.
func newFootprints(desc *scenario.System) *footprints {
	f := &footprints{owners: map[string][]string{}}
	chanBus := map[string]string{}
	for _, c := range desc.Channels {
		chanBus[c.Name] = c.Bus
	}
	irqCPU := map[string]string{}
	for _, q := range desc.IRQs {
		irqCPU[q.Name] = q.Processor
	}
	wdCPU := map[string]string{}
	for _, w := range desc.Watchdogs {
		wdCPU[w.Name] = w.Processor
	}
	srvCPU := map[string]string{}
	for _, s := range desc.Servers {
		srvCPU[s.Name] = s.Processor
	}
	refs := func(body []scenario.Op) []string {
		var out []string
		var walk func(ops []scenario.Op)
		walk = func(ops []scenario.Op) {
			for _, op := range ops {
				switch op.Op {
				case "wait", "signal":
					out = append(out, "obj:"+op.Event)
				case "put", "get", "tryput":
					out = append(out, "obj:"+op.Queue)
				case "lock", "unlock", "read", "write":
					out = append(out, "obj:"+op.Shared)
				case "send", "recv":
					out = append(out, "obj:"+op.Channel, "bus:"+chanBus[op.Channel])
				case "raise":
					out = append(out, "irq:"+op.IRQ, "cpu:"+irqCPU[op.IRQ])
				case "kick":
					out = append(out, "wd:"+op.Watchdog, "cpu:"+wdCPU[op.Watchdog])
				case "submit":
					out = append(out, "cpu:"+srvCPU[op.Server])
				case "repeat":
					walk(op.Body)
				}
			}
		}
		walk(body)
		return out
	}
	for _, p := range desc.Processors {
		f.owners[p.Name] = []string{"cpu:" + p.Name}
	}
	for _, t := range desc.Tasks {
		f.owners[t.Name] = append([]string{"cpu:" + t.Processor}, refs(t.Body)...)
	}
	for _, h := range desc.Hardware {
		f.owners[h.Name] = append([]string{"hw:" + h.Name}, refs(h.Body)...)
	}
	for _, q := range desc.IRQs {
		f.owners[q.Name] = append([]string{"irq:" + q.Name, "cpu:" + q.Processor}, refs(q.Body)...)
	}
	for _, w := range desc.Watchdogs {
		f.owners[w.Name] = []string{"wd:" + w.Name, "cpu:" + w.Processor}
	}
	for _, s := range desc.Servers {
		f.owners[s.Name] = []string{"cpu:" + s.Processor}
	}
	for _, b := range desc.Buses {
		f.owners[b.Name] = []string{"bus:" + b.Name}
	}
	for _, e := range desc.Events {
		f.owners[e.Name] = []string{"obj:" + e.Name}
	}
	for _, q := range desc.Queues {
		f.owners[q.Name] = []string{"obj:" + q.Name}
	}
	for _, c := range desc.Channels {
		f.owners[c.Name] = []string{"obj:" + c.Name, "bus:" + c.Bus}
	}
	for _, v := range desc.Shared {
		f.owners[v.Name] = []string{"obj:" + v.Name}
	}
	return f
}

// resources resolves a timed action to its owner's resource set, or nil for
// an unknown owner (which then conflicts with everything — sound, never
// unsound). Timed-action names are artifact names built from an owner plus
// dotted suffixes (task.delay, task.deadlineWatch, cpu.core1.quantum, the
// threaded engine's cpu.rtos thread), so resolution strips dotted suffixes
// until an owner matches.
func (f *footprints) resources(a sim.TimedAction) []string {
	name := a.Name
	for {
		if r, ok := f.owners[name]; ok {
			return r
		}
		i := strings.LastIndexByte(name, '.')
		if i < 0 {
			return nil
		}
		name = name[:i]
	}
}

// groups partitions a same-instant batch into conflict groups: actions in
// different groups touch disjoint resources and therefore commute, so only
// within-group orderings are enumerated. Groups are returned ordered by
// their first action index, members in index order — the canonical layout
// the mixed-radix decision encoding relies on.
func (f *footprints) groups(actions []sim.TimedAction) [][]int {
	n := len(actions)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	firstUse := map[string]int{}
	unknown := -1
	for i, a := range actions {
		rs := f.resources(a)
		if rs == nil {
			// Unresolvable owner: conflicts with everything.
			if unknown >= 0 {
				union(i, unknown)
			}
			unknown = i
			continue
		}
		for _, r := range rs {
			if j, ok := firstUse[r]; ok {
				union(i, j)
			} else {
				firstUse[r] = i
			}
		}
	}
	if unknown >= 0 {
		for i := 0; i < n; i++ {
			union(i, unknown)
		}
	}

	order := map[int]int{} // root -> group index
	var gs [][]int
	for i := 0; i < n; i++ {
		r := find(i)
		gi, ok := order[r]
		if !ok {
			gi = len(gs)
			order[r] = gi
			gs = append(gs, nil)
		}
		gs[gi] = append(gs[gi], i)
	}
	return gs
}
