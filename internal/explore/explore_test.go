package explore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

func readScenario(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runScenario simulates one scenario on the given engine and timed-queue
// backend, optionally with an identity chooser installed at both choice
// points, and returns the chronology and the equivalence signature.
func runScenario(t *testing.T, base []byte, engine, backend string, withChooser bool) (string, string) {
	t.Helper()
	desc, err := scenario.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	if engine != "" {
		for i := range desc.Processors {
			desc.Processors[i].Engine = engine
		}
	}
	desc.TimedQueue = backend
	built, err := desc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if withChooser {
		ch := newChooser(newFootprints(desc), 3, 24, nil, nil, nil)
		built.Sys.K.SetTimedPermuter(ch)
		built.Sys.SetReleaseJitterHook(ch.jitterFor)
	}
	if _, err := built.RunChecked(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return built.Sys.Chronology(), trace.Signature(built.Sys.Rec, built.Sys.Now())
}

// TestIdentityChooserMatchesSeedRuns is the identity-permutation
// differential: with the chooser installed but every decision at its
// default, the run must be byte-identical (chronology and signature) to the
// plain seed run — on both engines and both timed-queue backends, over the
// golden-pinned scenarios.
func TestIdentityChooserMatchesSeedRuns(t *testing.T) {
	scenarios := []string{"figure6.json", "figure7.json", "smp.json", "faults.json"}
	for _, name := range scenarios {
		base := readScenario(t, name)
		for _, engine := range []string{"procedural", "threaded"} {
			for _, backend := range []string{"wheel", "heap"} {
				chron, sig := runScenario(t, base, engine, backend, false)
				chronC, sigC := runScenario(t, base, engine, backend, true)
				if chron != chronC {
					t.Errorf("%s/%s/%s: identity chooser changed the chronology", name, engine, backend)
				}
				if sig != sigC {
					t.Errorf("%s/%s/%s: identity chooser changed the signature", name, engine, backend)
				}
			}
		}
	}
}

// TestExploreFindsSeededWatchdogViolation runs the full engine on the
// fault-injection scenario: release jitter within the declared bound can
// starve the watchdog, and the exploration must find that, minimize the
// trace, and verify its replay.
func TestExploreFindsSeededWatchdogViolation(t *testing.T) {
	eng, err := New(readScenario(t, "faults.json"))
	if err != nil {
		t.Fatal(err)
	}
	eng.Cfg.MaxRuns = 64
	eng.Cfg.Workers = 2
	sum, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("no violation found")
	}
	v := sum.Violations[0]
	if v.Kind != "watchdog" || v.Subject != "wd" {
		t.Fatalf("violation = %+v, want watchdog wd", v)
	}
	if !v.Replayed {
		t.Fatalf("violation replay not verified: %+v", v)
	}

	// The emitted trace must decode and deterministically reproduce the
	// violation, including under the scenario's fault injection.
	tr, err := Decode(v.Trace)
	if err != nil {
		t.Fatalf("emitted trace does not decode: %v", err)
	}
	r1, v1, err := eng.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, v2, err := eng.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == nil || v2 == nil || v1.Kind != "watchdog" || v2.Kind != "watchdog" {
		t.Fatalf("replays did not reproduce the violation: %+v, %+v", v1, v2)
	}
	if r1.Trace.trimmed().Encode() != r2.Trace.trimmed().Encode() {
		t.Fatal("two replays produced different decision logs")
	}
	if r1.Sig != r2.Sig {
		t.Fatal("two replays produced different trace signatures")
	}
}

// TestExploreFindsInversionViolation checks the priority-inversion
// invariant end to end on the inversion scenario: the jitter perturbation
// that lands the medium task inside the low task's critical section must be
// found and its minimized trace must replay.
func TestExploreFindsInversionViolation(t *testing.T) {
	eng, err := New(readScenario(t, "inversion.json"))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("no violation found")
	}
	v := sum.Violations[0]
	if v.Kind != "inversion" || v.Subject != "hi" {
		t.Fatalf("violation = %+v, want inversion of task hi", v)
	}
	if !v.Replayed {
		t.Fatalf("violation replay not verified: %+v", v)
	}
	if !strings.Contains(v.Detail, "priority inversion") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

// TestExploreWorkerCountInvariant pins that the exploration is independent
// of the worker pool size: serial and parallel searches must find the same
// violations with the same traces and counts.
func TestExploreWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *Summary {
		eng, err := New(readScenario(t, "inversion.json"))
		if err != nil {
			t.Fatal(err)
		}
		eng.Cfg.Workers = workers
		sum, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	serial, parallel := run(1), run(4)
	if serial.Explored != parallel.Explored || len(serial.Violations) != len(parallel.Violations) {
		t.Fatalf("serial explored %d/%d violations, parallel %d/%d",
			serial.Explored, len(serial.Violations), parallel.Explored, len(parallel.Violations))
	}
	for i := range serial.Violations {
		if serial.Violations[i].Trace != parallel.Violations[i].Trace {
			t.Fatalf("violation %d traces differ: %q vs %q",
				i, serial.Violations[i].Trace, parallel.Violations[i].Trace)
		}
	}
}

// TestExploreCrossEngineCheck runs the engine-equivalence invariant: every
// explored interleaving replayed on the other RTOS engine must produce the
// same trace signature. The seed scenarios satisfy it, so no divergence may
// be reported.
func TestExploreCrossEngineCheck(t *testing.T) {
	eng, err := New(readScenario(t, "inversion.json"))
	if err != nil {
		t.Fatal(err)
	}
	eng.Cfg.MaxRuns = 8
	eng.Cfg.MaxInversion = 0 // isolate the engine check
	eng.Cfg.CheckEngines = true
	sum, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.EngineRuns != sum.Explored {
		t.Fatalf("engine runs = %d, explored = %d", sum.EngineRuns, sum.Explored)
	}
	for _, v := range sum.Violations {
		if v.Kind == "engine-divergence" {
			t.Fatalf("spurious engine divergence: %+v", v)
		}
	}
}

// TestDPORPruningReducesScheduleSpace checks the commutativity analysis on a
// two-processor scenario: same-instant actions on unrelated processors
// commute, so the pruned alternative count must be strictly below the naive
// factorial count.
func TestDPORPruningReducesScheduleSpace(t *testing.T) {
	eng, err := New(readScenario(t, "soc_bus.json"))
	if err != nil {
		t.Fatal(err)
	}
	eng.Cfg.MaxRuns = 8
	sum, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stats.naiveAlts <= sum.Stats.dporAlts {
		t.Fatalf("pruning did not reduce the schedule space: naive %d, pruned %d",
			sum.Stats.naiveAlts, sum.Stats.dporAlts)
	}
	if sum.Stats.dporAlts == 0 {
		t.Fatal("no alternatives counted")
	}
}

// TestFootprintGroups pins the conflict analysis: tasks on different
// processors commute, tasks sharing a comm object do not, and unknown
// owners conflict with everything.
func TestFootprintGroups(t *testing.T) {
	desc, err := scenario.Parse([]byte(`{
		"processors": [{"name": "a"}, {"name": "b"}],
		"events": [{"name": "ev"}],
		"tasks": [
			{"name": "t1", "processor": "a", "body": [{"op": "execute", "for": "1us"}]},
			{"name": "t2", "processor": "b", "body": [{"op": "execute", "for": "1us"}]},
			{"name": "t3", "processor": "b", "body": [{"op": "signal", "event": "ev"}]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	fp := newFootprints(desc)
	groups := func(names ...string) [][]int {
		acts := make([]sim.TimedAction, len(names))
		for i, n := range names {
			acts[i] = sim.TimedAction{Name: n, IsProc: true}
		}
		return fp.groups(acts)
	}
	// Disjoint processors: two groups.
	if gs := groups("t1.delay", "t2.delay"); len(gs) != 2 {
		t.Fatalf("disjoint processors grouped: %v", gs)
	}
	// Same processor: one group.
	if gs := groups("t2.delay", "t3.delay"); len(gs) != 1 {
		t.Fatalf("same-processor tasks split: %v", gs)
	}
	// The event waiter conflicts with the signaller through ev even across
	// processors.
	if gs := groups("t1.delay", "ev"); len(gs) != 2 {
		t.Fatalf("unrelated event grouped with task: %v", gs)
	}
	if gs := groups("t3.delay", "ev"); len(gs) != 1 {
		t.Fatalf("event and its signaller split: %v", gs)
	}
	// Unknown owners conflict with everything: soundness fallback.
	if gs := groups("t1.delay", "mystery", "t2.delay"); len(gs) != 1 {
		t.Fatalf("unknown owner did not force one group: %v", gs)
	}
}
