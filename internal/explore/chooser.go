package explore

import (
	"fmt"
	"math"

	"repro/internal/rtos"
	"repro/internal/sim"
)

// runStats are one run's choice-point statistics, saturating at MaxUint64.
type runStats struct {
	choicePoints uint64 // decision points with >= 2 alternatives
	naiveAlts    uint64 // sum over batches of n! (unpruned orderings)
	dporAlts     uint64 // sum over batches of prod(|group|!) after pruning
	truncated    uint64 // alternatives cut by the maxBranch cap
}

func (s *runStats) add(o runStats) {
	s.choicePoints = satAdd(s.choicePoints, o.choicePoints)
	s.naiveAlts = satAdd(s.naiveAlts, o.naiveAlts)
	s.dporAlts = satAdd(s.dporAlts, o.dporAlts)
	s.truncated = satAdd(s.truncated, o.truncated)
}

// chooser resolves both choice points of one run: it is the kernel's
// sim.TimedPermuter and the RTOS model's release-jitter hook. Decisions up
// to len(prefix) replay the given trace (verifying each point's key);
// decisions past it take the default, which reproduces the seed schedule.
// Every decision is logged, so the full run is itself a replayable trace.
type chooser struct {
	fp        *footprints
	steps     int
	maxBranch uint64
	bounds    map[string]sim.Time // explored per-task jitter bounds
	injected  map[string]bool     // tasks whose bound the explorer added (nominal 0)

	prefix []Decision

	log   []Decision
	nalts []uint32
	err   error // first replay mismatch, nil when the prefix matched

	stats runStats

	scratch []sim.Time // Lehmer-unranking buffer
}

func newChooser(fp *footprints, steps, maxBranch int, bounds map[string]sim.Time,
	injected map[string]bool, prefix []Decision) *chooser {
	return &chooser{
		fp:        fp,
		steps:     steps,
		maxBranch: uint64(maxBranch),
		bounds:    bounds,
		injected:  injected,
		prefix:    prefix,
	}
}

// take resolves one decision point with nAlt alternatives: the prefix's
// value while replaying (verifying the point identity), the default past it.
func (c *chooser) take(kind uint8, key uint32, nAlt uint64) uint64 {
	pos := len(c.log)
	var v uint64
	if pos < len(c.prefix) {
		d := c.prefix[pos]
		if d.Kind != kind || d.Key != key || uint64(d.Value) >= nAlt {
			if c.err == nil {
				c.err = fmt.Errorf("explore: trace decision %d (kind %d, key %08x, value %d) does not match this run's choice point (kind %d, key %08x, %d alternatives)",
					pos, d.Kind, d.Key, d.Value, kind, key, nAlt)
			}
		} else {
			v = uint64(d.Value)
		}
	}
	c.log = append(c.log, Decision{Kind: kind, Key: key, Value: uint32(v)})
	na := nAlt
	if na > math.MaxUint32 {
		na = math.MaxUint32
	}
	c.nalts = append(c.nalts, uint32(na))
	c.stats.choicePoints++
	return v
}

// PermuteTimed implements sim.TimedPermuter: partition the batch into
// conflict groups, enumerate only within-group orderings (one mixed-radix
// decision over the group factorials), and apply the chosen per-group
// permutations to the firing order.
func (c *chooser) PermuteTimed(now sim.Time, actions []sim.TimedAction, order []int) {
	gs := c.fp.groups(actions)
	naive := satFact(uint64(len(actions)))
	nAlt := uint64(1)
	for _, g := range gs {
		nAlt = satMul(nAlt, satFact(uint64(len(g))))
	}
	c.stats.naiveAlts = satAdd(c.stats.naiveAlts, naive)
	c.stats.dporAlts = satAdd(c.stats.dporAlts, nAlt)
	if nAlt > c.maxBranch {
		c.stats.truncated = satAdd(c.stats.truncated, nAlt-c.maxBranch)
		nAlt = c.maxBranch
	}
	if nAlt <= 1 {
		return
	}
	v := c.take(KindTie, tieKey(now, len(actions), nAlt), nAlt)
	for _, g := range gs {
		if len(g) < 2 {
			continue
		}
		f := satFact(uint64(len(g)))
		c.applyPerm(order, g, v%f)
		v /= f
	}
}

// applyPerm permutes the order entries at positions g by the rank-th
// permutation of len(g) elements (Lehmer-code unranking; rank 0 is the
// identity, preserving seq order).
func (c *chooser) applyPerm(order []int, g []int, rank uint64) {
	vals := c.scratch[:0]
	for _, p := range g {
		vals = append(vals, sim.Time(order[p]))
	}
	c.scratch = vals
	for j, p := range g {
		f := satFact(uint64(len(g) - 1 - j))
		idx := int(rank / f)
		rank %= f
		order[p] = int(vals[idx])
		vals = append(vals[:idx], vals[idx+1:]...)
	}
}

// jitterFor is the rtos release-jitter hook: tasks with an explored bound
// choose among [nominal, quantized candidates]; everything else keeps the
// deterministic default.
func (c *chooser) jitterFor(task string, cycle int, max sim.Time) sim.Time {
	if bound, ok := c.bounds[task]; !ok || bound != max {
		return rtos.DefaultReleaseJitter(task, cycle, max)
	}
	cands := c.jitterCandidates(task, cycle, max)
	if len(cands) <= 1 {
		return cands[0]
	}
	nAlt := uint64(len(cands))
	v := c.take(KindJitter, jitterKey(task, cycle, nAlt), nAlt)
	return cands[v]
}

// jitterCandidates builds one release's candidate set: the nominal value
// first (decision 0 reproduces the seed run), then steps quantized values
// spread over [0, max], deduplicated in order.
func (c *chooser) jitterCandidates(task string, cycle int, max sim.Time) []sim.Time {
	var nominal sim.Time
	if !c.injected[task] {
		nominal = rtos.DefaultReleaseJitter(task, cycle, max)
	}
	cands := []sim.Time{nominal}
	steps := c.steps
	if steps < 2 {
		steps = 2
	}
	for i := 0; i < steps; i++ {
		v := sim.Time(uint64(max) * uint64(i) / uint64(steps-1))
		dup := false
		for _, x := range cands {
			if x == v {
				dup = true
				break
			}
		}
		if !dup {
			cands = append(cands, v)
		}
	}
	return cands
}

// Saturating arithmetic: decision-space sizes are combinatorial and only
// reported, so capping at MaxUint64 beats overflow wraparound.

func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// satFact returns n!, saturating (21! overflows uint64).
func satFact(n uint64) uint64 {
	if n > 20 {
		return math.MaxUint64
	}
	f := uint64(1)
	for i := uint64(2); i <= n; i++ {
		f *= i
	}
	return f
}
