package explore

import (
	"strings"
	"testing"
)

func sampleTraces() []Trace {
	return []Trace{
		{},
		{Decisions: []Decision{{Kind: KindTie, Key: 0xdeadbeef, Value: 3}}},
		{Decisions: []Decision{
			{Kind: KindTie, Key: 1, Value: 0},
			{Kind: KindJitter, Key: 0xffffffff, Value: 0xffffffff},
			{Kind: KindTie, Key: 42, Value: 7},
		}},
	}
}

// TestTraceRoundTrip pins Encode/Decode as exact inverses.
func TestTraceRoundTrip(t *testing.T) {
	for _, tr := range sampleTraces() {
		enc := tr.Encode()
		if !strings.HasPrefix(enc, tracePrefix) {
			t.Fatalf("encoded trace %q lacks prefix", enc)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if got.Encode() != enc {
			t.Fatalf("round trip changed the trace: %q -> %q", enc, got.Encode())
		}
	}
}

// TestTraceDecodeRejectsCorruption checks that truncation and tampering are
// decoding errors, never silent misreplays.
func TestTraceDecodeRejectsCorruption(t *testing.T) {
	enc := sampleTraces()[2].Encode()
	// Every proper prefix must fail (truncation).
	for i := 0; i < len(enc); i++ {
		if _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("truncated trace %q decoded", enc[:i])
		}
	}
	// Flipping any payload character must fail (checksum).
	for i := len(tracePrefix); i < len(enc); i++ {
		c := byte('A')
		if enc[i] == 'A' {
			c = 'B'
		}
		tampered := enc[:i] + string(c) + enc[i+1:]
		if _, err := Decode(tampered); err == nil {
			t.Fatalf("tampered trace %q decoded", tampered)
		}
	}
	for _, bad := range []string{"", "xt1:", "xt2:AAAA", "xt1:!!!!", "not a trace"} {
		if _, err := Decode(bad); err == nil {
			t.Fatalf("malformed trace %q decoded", bad)
		}
	}
}

// TestTraceTrimmed pins that trailing default decisions are dropped and
// non-trailing ones kept.
func TestTraceTrimmed(t *testing.T) {
	tr := Trace{Decisions: []Decision{
		{Kind: KindTie, Key: 1, Value: 0},
		{Kind: KindJitter, Key: 2, Value: 5},
		{Kind: KindTie, Key: 3, Value: 0},
		{Kind: KindTie, Key: 4, Value: 0},
	}}
	got := tr.trimmed()
	if len(got.Decisions) != 2 || got.Decisions[1].Value != 5 {
		t.Fatalf("trimmed = %+v", got.Decisions)
	}
	if n := len(Trace{}.trimmed().Decisions); n != 0 {
		t.Fatalf("empty trace trimmed to %d decisions", n)
	}
}

// FuzzDecode checks the decoder never panics on arbitrary input and that
// everything it accepts re-encodes canonically and round-trips.
func FuzzDecode(f *testing.F) {
	for _, tr := range sampleTraces() {
		f.Add(tr.Encode())
	}
	f.Add("xt1:")
	f.Add("xt1:AAAAAAAA")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Decode(s)
		if err != nil {
			return
		}
		enc := tr.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded trace %q does not decode: %v", enc, err)
		}
		if back.Encode() != enc {
			t.Fatalf("re-encode not canonical: %q -> %q", enc, back.Encode())
		}
	})
}
