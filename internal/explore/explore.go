package explore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config bounds and parameterizes one exploration. New seeds it from the
// scenario's explore block (with defaults); callers may adjust it before Run.
type Config struct {
	// MaxRuns bounds the number of enumerated interleavings.
	MaxRuns int
	// MaxDepth bounds how many choice points of a run may be branched on.
	MaxDepth int
	// JitterSteps is the number of quantized jitter candidates per release.
	JitterSteps int
	// MaxBranch caps the alternatives enumerated at one choice point.
	MaxBranch int
	// Workers bounds concurrent runs within one frontier wave (<= 0: all
	// cores). Any worker count yields the same exploration.
	Workers int
	// Jitter holds the per-task release-jitter bounds to perturb within.
	Jitter map[string]sim.Time
	// ExpectedMiss lists tasks whose deadline misses are not violations (the
	// baseline run's misses are always expected).
	ExpectedMiss []string
	// MaxInversion bounds the longest tolerated priority inversion (0: off).
	MaxInversion sim.Time
	// CheckEngines replays every explored interleaving on the other RTOS
	// engine and requires identical trace signatures.
	CheckEngines bool
}

// Engine explores the schedule space of one scenario.
type Engine struct {
	// Cfg is the effective configuration; adjust before calling Run.
	Cfg Config

	base  []byte
	desc  *scenario.System
	fp    *footprints
	other string // the engine CheckEngines compares against

	// Metrics counts the exploration's own effort: runs by kind, choice
	// points, pruned alternatives and violations.
	Metrics *metrics.Registry
}

// New parses and validates the scenario and seeds the configuration from its
// explore block (absent fields and an absent block get the documented
// defaults).
func New(base []byte) (*Engine, error) {
	desc, err := scenario.Parse(base)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Cfg: Config{
			MaxRuns:     256,
			MaxDepth:    32,
			JitterSteps: 3,
			MaxBranch:   24,
			Jitter:      map[string]sim.Time{},
		},
		base:    base,
		desc:    desc,
		fp:      newFootprints(desc),
		other:   "threaded",
		Metrics: metrics.NewRegistry(),
	}
	for _, p := range desc.Processors {
		if p.Engine == "threaded" {
			e.other = "procedural"
			break
		}
	}
	if x := desc.Explore; x != nil {
		if x.MaxRuns > 0 {
			e.Cfg.MaxRuns = x.MaxRuns
		}
		if x.MaxDepth > 0 {
			e.Cfg.MaxDepth = x.MaxDepth
		}
		if x.JitterSteps > 0 {
			e.Cfg.JitterSteps = x.JitterSteps
		}
		if x.MaxBranch > 0 {
			e.Cfg.MaxBranch = x.MaxBranch
		}
		for task, d := range x.Jitter {
			e.Cfg.Jitter[task] = d.Time()
		}
		e.Cfg.ExpectedMiss = append(e.Cfg.ExpectedMiss, x.ExpectedMiss...)
		e.Cfg.MaxInversion = x.MaxInversion.Time()
		e.Cfg.CheckEngines = x.CheckEngines
	}
	return e, nil
}

// RunResult is the outcome of one explored interleaving.
type RunResult struct {
	// Trace is the full decision log — itself a replayable choice trace.
	Trace Trace
	// NAlts holds each decision's alternative count (branching width).
	NAlts []uint32
	// Err is the failure text of a failed run ("" on a clean finish).
	Err string
	// Mismatch marks a replay whose trace did not match the run's choice
	// points (Err then holds the first divergence).
	Mismatch bool
	// End and Finish tell when and why the run ended.
	End    sim.Time
	Finish string
	// Sig is the engine-equivalence trace signature.
	Sig string
	// Misses holds the tasks that missed a deadline.
	Misses map[string]bool
	// WatchdogFires counts expirations per watchdog.
	WatchdogFires map[string]uint64
	// Constraints counts violations per non-deadline timing constraint.
	Constraints map[string]int
	// MaxInv is the longest priority-inversion interval of any task, and
	// MaxInvTask the (alphabetically first) task that endured it.
	MaxInv     sim.Time
	MaxInvTask string
	// Stats are the run's choice-point statistics.
	Stats runStats
}

// Violation is one invariant violation, with the minimized choice trace that
// reproduces it.
type Violation struct {
	// Kind is the invariant that failed: "run-failure", "deadline-miss",
	// "inversion", "engine-divergence" or "trace-mismatch".
	Kind string
	// Subject anchors deduplication and minimization: the missing task, the
	// inverted task, or the failure's first line.
	Subject string
	// Detail is the human-readable description.
	Detail string
	// Trace is the minimized encoded choice trace reproducing the violation.
	Trace string
	// Replayed reports that the minimized trace was replayed twice and
	// reproduced the violation with byte-identical decision logs and equal
	// trace signatures.
	Replayed bool
	// Run is the index of the explored run that first exhibited it.
	Run int
}

// baseline holds the unperturbed run's outcomes: what every explored
// interleaving is judged against.
type baseline struct {
	// miss holds the tasks expected to miss deadlines: the baseline run's
	// misses plus the scenario's expectedMiss list.
	miss map[string]bool
	// wdFires and constraints hold the baseline expiration and violation
	// counts; an interleaving exceeding them violates an invariant.
	wdFires     map[string]uint64
	constraints map[string]int
}

func (e *Engine) newBaseline(r *RunResult) *baseline {
	b := &baseline{
		miss:        map[string]bool{},
		wdFires:     r.WatchdogFires,
		constraints: r.Constraints,
	}
	for task := range r.Misses {
		b.miss[task] = true
	}
	for _, task := range e.Cfg.ExpectedMiss {
		b.miss[task] = true
	}
	return b
}

// Summary aggregates one exploration.
type Summary struct {
	// Explored counts enumerated interleavings; EngineRuns the extra
	// cross-engine comparison runs; ReplayRuns the minimization and
	// verification runs.
	Explored   int
	EngineRuns int
	ReplayRuns int
	// Dropped counts frontier entries abandoned at the MaxRuns bound.
	Dropped int
	// Stats aggregates the explored runs' choice-point statistics: the naive
	// versus pruned schedule-space sizes quantify the commutativity pruning.
	Stats runStats
	// Violations holds the distinct invariant violations found.
	Violations []Violation
}

// Run enumerates the schedule space breadth-first from the unperturbed
// baseline, judging every interleaving against the invariants. The search
// tree branches each explored run at every decision past its prefix, so each
// interleaving is generated exactly once; MaxRuns truncates the frontier
// (truncation is counted, never silent).
func (e *Engine) Run() (*Summary, error) {
	sum := &Summary{}
	seen := map[string]bool{}
	var base *baseline
	frontier := [][]Decision{nil}
	for len(frontier) > 0 && sum.Explored < e.Cfg.MaxRuns {
		wave := frontier
		frontier = nil
		if room := e.Cfg.MaxRuns - sum.Explored; len(wave) > room {
			sum.Dropped += len(wave) - room
			wave = wave[:room]
		}
		outs := make([]*RunResult, len(wave))
		batch.ForEach(len(wave), e.Cfg.Workers, func(i int) { outs[i] = e.runOne(wave[i], "") })
		for wi, r := range outs {
			idx := sum.Explored
			sum.Explored++
			sum.Stats.add(r.Stats)
			if idx == 0 {
				if r.Err != "" {
					return sum, fmt.Errorf("explore: baseline run failed: %s", firstLine(r.Err))
				}
				base = e.newBaseline(r)
			}
			v := e.judge(r, base)
			if v == nil && e.Cfg.CheckEngines {
				v = e.checkEngines(r, sum)
			}
			if v == nil {
				frontier = e.expand(frontier, wave[wi], r)
				continue
			}
			v.Run = idx
			key := v.Kind + "|" + v.Subject
			if seen[key] {
				continue
			}
			seen[key] = true
			e.minimize(v, r, base, sum)
			sum.Violations = append(sum.Violations, *v)
		}
	}
	sum.Dropped += len(frontier)
	e.record(sum)
	return sum, nil
}

// Replay runs one choice trace against the scenario and judges it against
// the baseline's expectations, returning the run and the violation it
// reproduces (nil when it satisfies every invariant).
func (e *Engine) Replay(t Trace) (*RunResult, *Violation, error) {
	br := e.runOne(nil, "")
	if br.Err != "" {
		return nil, nil, fmt.Errorf("explore: baseline run failed: %s", firstLine(br.Err))
	}
	r := e.runOne(t.Decisions, "")
	return r, e.judge(r, e.newBaseline(br)), nil
}

// runOne simulates one interleaving: a fresh parse and build of the base
// scenario (runs share nothing), the chooser installed at both choice
// points, inversion tracking on.
func (e *Engine) runOne(prefix []Decision, engine string) *RunResult {
	res := &RunResult{
		Misses:        map[string]bool{},
		WatchdogFires: map[string]uint64{},
		Constraints:   map[string]int{},
	}
	desc, err := scenario.Parse(e.base)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	// Exploration enumerates the goroutine engine's decision space; automatic
	// continuation lowering would change which choice points exist, so force
	// the opt-out for every run (replay traces must decode against the same
	// space they were recorded in).
	optOut := false
	desc.AutoEngine = &optOut
	if engine != "" {
		for i := range desc.Processors {
			desc.Processors[i].Engine = engine
		}
	}
	bounds := map[string]sim.Time{}
	injected := map[string]bool{}
	for i := range desc.Tasks {
		t := &desc.Tasks[i]
		b, ok := e.Cfg.Jitter[t.Name]
		if !ok {
			continue
		}
		bounds[t.Name] = b
		if t.Jitter.Time() == 0 {
			injected[t.Name] = true
		}
		t.Jitter = scenario.Duration(b)
	}
	built, err := desc.Build()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	ch := newChooser(e.fp, e.Cfg.JitterSteps, e.Cfg.MaxBranch, bounds, injected, prefix)
	built.Sys.K.SetTimedPermuter(ch)
	built.Sys.SetReleaseJitterHook(ch.jitterFor)
	built.Sys.EnableInversionTracking()
	rep, runErr := built.RunChecked()
	if runErr != nil {
		res.Err = runErr.Error()
		shutdownQuietly(built)
	}
	res.End = built.Sys.Now()
	res.Finish = rep.Reason.String()
	res.Trace = Trace{Decisions: ch.log}
	res.NAlts = ch.nalts
	res.Stats = ch.stats
	if ch.err != nil {
		res.Mismatch = true
		if res.Err == "" {
			res.Err = ch.err.Error()
		}
	}
	res.Sig = trace.Signature(built.Sys.Rec, res.End)
	for _, viol := range built.Sys.Constraints.Violations() {
		if task, ok := strings.CutSuffix(viol.Name, ".deadline"); ok {
			res.Misses[task] = true
		} else {
			res.Constraints[viol.Name]++
		}
	}
	for name, wd := range built.Watchdogs {
		res.WatchdogFires[name] = wd.Fired()
	}
	for _, name := range sortedKeys(built.Tasks) {
		if inv := built.Tasks[name].MaxInversion(); inv > res.MaxInv {
			res.MaxInv = inv
			res.MaxInvTask = name
		}
	}
	return res
}

// judge checks one run against the invariants, returning the first violation.
func (e *Engine) judge(r *RunResult, base *baseline) *Violation {
	if r.Mismatch {
		return &Violation{Kind: "trace-mismatch", Subject: "replay", Detail: r.Err}
	}
	if r.Err != "" {
		return &Violation{Kind: "run-failure", Subject: firstLine(r.Err),
			Detail: "run failed: " + firstLine(r.Err)}
	}
	for _, task := range sortedKeys(r.Misses) {
		if !base.miss[task] {
			return &Violation{Kind: "deadline-miss", Subject: task,
				Detail: fmt.Sprintf("task %s missed a deadline outside the expected set", task)}
		}
	}
	for _, wd := range sortedKeys(r.WatchdogFires) {
		if got, want := r.WatchdogFires[wd], base.wdFires[wd]; got > want {
			return &Violation{Kind: "watchdog", Subject: wd,
				Detail: fmt.Sprintf("watchdog %s fired %d time(s), baseline %d", wd, got, want)}
		}
	}
	for _, name := range sortedKeys(r.Constraints) {
		if got, want := r.Constraints[name], base.constraints[name]; got > want {
			return &Violation{Kind: "constraint", Subject: name,
				Detail: fmt.Sprintf("constraint %s violated %d time(s), baseline %d", name, got, want)}
		}
	}
	if e.Cfg.MaxInversion > 0 && r.MaxInv > e.Cfg.MaxInversion {
		return &Violation{Kind: "inversion", Subject: r.MaxInvTask,
			Detail: fmt.Sprintf("task %s endured a %v priority inversion (bound %v)",
				r.MaxInvTask, r.MaxInv, e.Cfg.MaxInversion)}
	}
	return nil
}

// checkEngines replays the run's trace on the other RTOS engine and compares
// trace signatures. Choice-point keys are content-derived and name-free, so
// the same model-level schedule aligns across engines; a key mismatch means
// the engines disagree on the schedule itself.
func (e *Engine) checkEngines(r *RunResult, sum *Summary) *Violation {
	or := e.runOne(r.Trace.trimmed().Decisions, e.other)
	sum.EngineRuns++
	switch {
	case or.Mismatch:
		return &Violation{Kind: "engine-divergence", Subject: "choice-points",
			Detail: "engines disagree on the choice-point sequence: " + firstLine(or.Err)}
	case or.Err != "":
		return &Violation{Kind: "engine-divergence", Subject: "run",
			Detail: e.other + " engine failed on the same trace: " + firstLine(or.Err)}
	case or.Sig != r.Sig:
		return &Violation{Kind: "engine-divergence", Subject: "signature",
			Detail: fmt.Sprintf("trace signatures differ between engines (%d vs %d bytes)",
				len(r.Sig), len(or.Sig))}
	}
	return nil
}

// expand appends the run's children to the frontier: one child per
// non-default alternative at every decision past the run's prefix (those
// decisions all took the default, so each child trace is generated exactly
// once across the whole search).
func (e *Engine) expand(frontier [][]Decision, prefix []Decision, r *RunResult) [][]Decision {
	depth := len(r.Trace.Decisions)
	if depth > e.Cfg.MaxDepth {
		depth = e.Cfg.MaxDepth
	}
	for pos := len(prefix); pos < depth; pos++ {
		for v := uint32(1); v < r.NAlts[pos]; v++ {
			child := make([]Decision, pos+1)
			copy(child, r.Trace.Decisions[:pos])
			d := r.Trace.Decisions[pos]
			d.Value = v
			child[pos] = d
			frontier = append(frontier, child)
		}
	}
	return frontier
}

// minimize shrinks the violating trace — zeroing non-default decisions from
// the back, keeping a change only when the same violation survives — then
// verifies the result: two replays must reproduce the violation with
// byte-identical decision logs and equal signatures before the trace is
// marked Replayed.
func (e *Engine) minimize(v *Violation, r *RunResult, base *baseline, sum *Summary) {
	matches := func(rr *RunResult) bool {
		if rr.Mismatch && v.Kind != "trace-mismatch" {
			return false
		}
		vv := e.judge(rr, base)
		return vv != nil && vv.Kind == v.Kind && vv.Subject == v.Subject
	}
	dec := append([]Decision(nil), r.Trace.trimmed().Decisions...)
	for i := len(dec) - 1; i >= 0; i-- {
		if dec[i].Value == 0 {
			continue
		}
		trial := append([]Decision(nil), dec...)
		trial[i].Value = 0
		rr := e.runOne(trial, "")
		sum.ReplayRuns++
		if matches(rr) {
			dec = Trace{Decisions: trial}.trimmed().Decisions
			if i > len(dec) {
				i = len(dec)
			}
		}
	}
	min := Trace{Decisions: dec}.trimmed()
	r1 := e.runOne(min.Decisions, "")
	r2 := e.runOne(min.Decisions, "")
	sum.ReplayRuns += 2
	v.Trace = min.Encode()
	v.Replayed = matches(r1) && matches(r2) &&
		r1.Trace.trimmed().Encode() == r2.Trace.trimmed().Encode() &&
		r1.Sig == r2.Sig
}

// record publishes the exploration's effort into the engine's metrics
// registry.
func (e *Engine) record(sum *Summary) {
	e.Metrics.Counter("explore_runs_total", "interleavings explored").Add(uint64(sum.Explored))
	e.Metrics.Counter("explore_engine_runs_total", "cross-engine comparison runs").Add(uint64(sum.EngineRuns))
	e.Metrics.Counter("explore_replay_runs_total", "minimization and verification runs").Add(uint64(sum.ReplayRuns))
	e.Metrics.Counter("explore_choice_points_total", "decision points encountered").Add(sum.Stats.choicePoints)
	e.Metrics.Counter("explore_alts_naive_total", "schedule-space size before commutativity pruning").Add(sum.Stats.naiveAlts)
	e.Metrics.Counter("explore_alts_pruned_total", "schedule-space size after commutativity pruning").Add(sum.Stats.dporAlts)
	e.Metrics.Counter("explore_alts_truncated_total", "alternatives cut by the maxBranch cap").Add(sum.Stats.truncated)
	e.Metrics.Counter("explore_frontier_dropped_total", "frontier entries abandoned at the run bound").Add(uint64(sum.Dropped))
	e.Metrics.Counter("explore_violations_total", "distinct invariant violations found").Add(uint64(len(sum.Violations)))
}

// ChoicePoints, NaiveAlts, PrunedAlts, TruncatedAlts expose the aggregated
// statistics (saturated values render as ">1.8e19" in Report).
func (s *Summary) ChoicePoints() uint64  { return s.Stats.choicePoints }
func (s *Summary) NaiveAlts() uint64     { return s.Stats.naiveAlts }
func (s *Summary) PrunedAlts() uint64    { return s.Stats.dporAlts }
func (s *Summary) TruncatedAlts() uint64 { return s.Stats.truncated }

// Report renders the exploration summary for terminal output.
func (s *Summary) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explore: %d interleaving(s) explored, %d violation(s)\n",
		s.Explored, len(s.Violations))
	fmt.Fprintf(&b, "  choice points: %d   same-instant orderings: %s naive, %s after pruning, %s truncated\n",
		s.Stats.choicePoints, satStr(s.Stats.naiveAlts), satStr(s.Stats.dporAlts), satStr(s.Stats.truncated))
	fmt.Fprintf(&b, "  extra runs: %d cross-engine, %d replay/minimization   frontier dropped: %d\n",
		s.EngineRuns, s.ReplayRuns, s.Dropped)
	for i := range s.Violations {
		v := &s.Violations[i]
		status := "replay NOT verified"
		if v.Replayed {
			status = "replay verified"
		}
		fmt.Fprintf(&b, "  violation [%s] at run %d: %s (%s)\n    trace: %s\n",
			v.Kind, v.Run, v.Detail, status, v.Trace)
	}
	return b.String()
}

// satStr renders a saturating counter.
func satStr(v uint64) string {
	if v == math.MaxUint64 {
		return ">1.8e19"
	}
	return fmt.Sprintf("%d", v)
}

// firstLine truncates multi-line failure text.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// shutdownQuietly unwinds a failed run's kernel, swallowing any secondary
// panic: the run is already reported as failed.
func shutdownQuietly(built *scenario.Built) {
	defer func() { _ = recover() }()
	built.Sys.Shutdown()
}
