// Package explore enumerates the schedule space of a scenario: it injects
// controlled nondeterminism at the kernel's two legal choice points — the
// same-instant tie-break order (sim.TimedPermuter) and periodic release
// jitter (rtos.System.SetReleaseJitterHook) — records every decision as a
// compact choice trace, searches the interleaving set breadth-first with
// partial-order pruning, checks per-run invariants, and on a violation
// minimizes and replays the trace that reproduces it.
package explore

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"strings"

	"repro/internal/sim"
)

// Decision kinds.
const (
	// KindTie is a same-instant tie-break choice: which ordering of one
	// timed batch's conflict groups fired.
	KindTie = uint8(1)
	// KindJitter is a release-jitter choice: which candidate jitter value a
	// periodic release took.
	KindJitter = uint8(2)
)

// Decision is one resolved choice point. Key identifies the point by
// content (instant, batch width and alternative count for ties; task, cycle
// and alternative count for jitter), never by position-dependent state, so a
// replay detects a trace that no longer matches the run. Value is the
// alternative taken; 0 is always the default (seed) behaviour.
type Decision struct {
	Kind  uint8
	Key   uint32
	Value uint32
}

// Trace is a replayable choice trace: the decision sequence of one run, in
// encounter order. Decisions past the end of a trace take the default.
type Trace struct {
	Decisions []Decision
}

// tracePrefix distinguishes (and versions) the textual trace encoding.
const tracePrefix = "xt1:"

// Encode renders the trace as a printable token: "xt1:" + URL-safe base64 of
// (uvarint count, per-decision kind/key/value uvarints, CRC-32 of the
// preceding payload). The checksum makes truncation and corruption decoding
// errors rather than silent misreplays.
func (t Trace) Encode() string {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(t.Decisions)))
	for _, d := range t.Decisions {
		buf = append(buf, d.Kind)
		buf = binary.AppendUvarint(buf, uint64(d.Key))
		buf = binary.AppendUvarint(buf, uint64(d.Value))
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	return tracePrefix + base64.RawURLEncoding.EncodeToString(buf)
}

// Decode parses an encoded choice trace, rejecting anything malformed:
// wrong prefix, bad base64, checksum mismatch, unknown decision kind,
// out-of-range varints or trailing bytes.
func Decode(s string) (Trace, error) {
	if !strings.HasPrefix(s, tracePrefix) {
		return Trace{}, fmt.Errorf("explore: choice trace must start with %q", tracePrefix)
	}
	// Strict decoding also rejects non-zero padding bits in the final
	// character, keeping the encoding canonical (one trace, one string).
	buf, err := base64.RawURLEncoding.Strict().DecodeString(s[len(tracePrefix):])
	if err != nil {
		return Trace{}, fmt.Errorf("explore: malformed choice trace: %v", err)
	}
	if len(buf) < 4 {
		return Trace{}, fmt.Errorf("explore: truncated choice trace")
	}
	payload, crc := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(payload) != crc {
		return Trace{}, fmt.Errorf("explore: choice trace checksum mismatch")
	}
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return Trace{}, fmt.Errorf("explore: malformed decision count")
	}
	if n > uint64(len(payload)) {
		// Each decision takes at least 3 bytes; this cheap bound rejects
		// absurd counts before allocating.
		return Trace{}, fmt.Errorf("explore: decision count %d exceeds payload", n)
	}
	payload = payload[used:]
	t := Trace{Decisions: make([]Decision, 0, n)}
	for i := uint64(0); i < n; i++ {
		if len(payload) == 0 {
			return Trace{}, fmt.Errorf("explore: truncated decision %d", i)
		}
		kind := payload[0]
		if kind != KindTie && kind != KindJitter {
			return Trace{}, fmt.Errorf("explore: decision %d has unknown kind %d", i, kind)
		}
		payload = payload[1:]
		key, used := binary.Uvarint(payload)
		if used <= 0 || key > 0xffffffff {
			return Trace{}, fmt.Errorf("explore: malformed key of decision %d", i)
		}
		payload = payload[used:]
		val, used := binary.Uvarint(payload)
		if used <= 0 || val > 0xffffffff {
			return Trace{}, fmt.Errorf("explore: malformed value of decision %d", i)
		}
		payload = payload[used:]
		t.Decisions = append(t.Decisions, Decision{Kind: kind, Key: uint32(key), Value: uint32(val)})
	}
	if len(payload) != 0 {
		return Trace{}, fmt.Errorf("explore: %d trailing bytes after %d decisions", len(payload), n)
	}
	return t, nil
}

// trimmed returns the trace without trailing default decisions: a replay
// fills defaults past the end, so two traces differing only in trailing
// zeros are the same schedule.
func (t Trace) trimmed() Trace {
	d := t.Decisions
	for len(d) > 0 && d[len(d)-1].Value == 0 {
		d = d[:len(d)-1]
	}
	return Trace{Decisions: d}
}

// tieKey identifies a same-instant tie-break point: the batch instant, its
// width and its pruned alternative count. Deliberately name-free, so the
// same model-level schedule produces the same key sequence on both engines.
func tieKey(now sim.Time, n int, nAlt uint64) uint32 {
	h := fnv.New32a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(now))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], nAlt)
	h.Write(b[:])
	return h.Sum32()
}

// jitterKey identifies a release-jitter point by task, cycle and candidate
// count.
func jitterKey(task string, cycle int, nAlt uint64) uint32 {
	h := fnv.New32a()
	h.Write([]byte(task))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(cycle))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], nAlt)
	h.Write(b[:])
	return h.Sum32()
}
