// Package rtosmodel is the public facade of the generic RTOS simulation
// model, a reproduction of "A Generic RTOS Model for Real-time Systems
// Simulation with SystemC" (Le Moigne, Pasquier, Calvez — DATE 2004) in pure
// Go.
//
// The library simulates real-time hardware/software systems at a high
// abstraction level: software tasks serialized on processors by a
// parameterizable RTOS model (scheduling policy, preemptive/non-preemptive
// mode, and the three RTOS overhead durations — scheduling, context save,
// context load — as fixed values or formulas over the simulated system
// state), co-simulated with truly parallel hardware tasks, all communicating
// through MCSE relations (events, message queues, shared variables).
//
// A minimal system:
//
//	sys := rtosmodel.NewSystem()
//	cpu := sys.NewProcessor("cpu0", rtosmodel.Config{
//		Policy:    rtosmodel.PriorityPreemptive{},
//		Overheads: rtosmodel.UniformOverheads(5 * rtosmodel.Us),
//	})
//	irq := rtosmodel.NewEvent(sys.Rec, "irq", rtosmodel.Boolean)
//	cpu.NewTask("handler", rtosmodel.TaskConfig{Priority: 10}, func(c *rtosmodel.TaskCtx) {
//		irq.Wait(c)
//		c.Execute(40 * rtosmodel.Us)
//	})
//	sys.NewHWTask("device", rtosmodel.HWConfig{}, func(c *rtosmodel.HWCtx) {
//		c.Wait(300 * rtosmodel.Us)
//		irq.Signal(c)
//	})
//	sys.Run()
//	fmt.Print(sys.Stats(0))
//
// The facade re-exports the stable surface of the internal packages:
//
//   - internal/sim — the discrete-event kernel (SystemC 2.0 semantics);
//   - internal/rtos — the RTOS model itself, the paper's contribution;
//   - internal/comm — the MCSE communication relations;
//   - internal/trace — timeline, statistics, CSV/VCD export;
//   - internal/scenario — JSON system descriptions.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results. The benchmark harness regenerating every figure of
// the paper's evaluation lives next to this file in bench_test.go.
package rtosmodel

import (
	"repro/internal/analysis"
	"repro/internal/bus"
	"repro/internal/comm"
	"repro/internal/metrics"
	"repro/internal/rtos"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Simulated time: sim.Time in picoseconds with unit constants.
type (
	// Time is a simulated instant or duration in picoseconds.
	Time = sim.Time
	// Kernel is the discrete-event simulation kernel.
	Kernel = sim.Kernel
	// Proc is a raw kernel process (hardware-level modelling).
	Proc = sim.Proc
	// KernelEvent is a raw kernel event (sc_event analogue); for RTOS-aware
	// synchronization between tasks use Event instead.
	KernelEvent = sim.Event
	// Clock generates a periodic kernel event.
	Clock = sim.Clock
	// Method is a callback run inline by the kernel when its sensitivity
	// events fire (sc_method analogue) — no goroutine, no stack.
	Method = sim.Method
	// TimedQueueBackend selects the kernel's timed-event queue
	// implementation; see Kernel.SetTimedQueue.
	TimedQueueBackend = sim.TimedQueueBackend
)

// Timed-queue backends (Kernel.SetTimedQueue). The timing wheel is the
// default; the binary heap remains as a differential-testing reference and
// for workloads with very sparse far-future timers.
const (
	TimedQueueWheel = sim.TimedQueueWheel
	TimedQueueHeap  = sim.TimedQueueHeap
)

// Duration units.
const (
	Ps  = sim.Ps
	Ns  = sim.Ns
	Us  = sim.Us
	Ms  = sim.Ms
	Sec = sim.Sec
)

// Signal is a hardware wire/register with evaluate/update semantics.
type Signal[T comparable] = sim.Signal[T]

// NewSignal creates a signal on kernel k with an initial value.
func NewSignal[T comparable](k *Kernel, name string, initial T) *Signal[T] {
	return sim.NewSignal(k, name, initial)
}

// The RTOS model (the paper's contribution).
type (
	// System bundles kernel, recorder, processors, hardware tasks and the
	// timing-constraint monitor.
	System = rtos.System
	// Processor is a CPU whose tasks are serialized by the RTOS model.
	Processor = rtos.Processor
	// Config parameterizes a processor's RTOS.
	Config = rtos.Config
	// EngineKind selects the RTOS model implementation (paper section 4).
	EngineKind = rtos.EngineKind
	// SchedDomain selects how a multi-core processor distributes its tasks
	// (Config.Domain): partitioned per-core queues or one global queue.
	SchedDomain = rtos.SchedDomain
	// Migration is one recorded task move between cores.
	Migration = trace.Migration
	// Task is a software task.
	Task = rtos.Task
	// TaskConfig carries a task's static parameters.
	TaskConfig = rtos.TaskConfig
	// TaskCtx is the API a task behaviour uses.
	TaskCtx = rtos.TaskCtx
	// Continuation is a resumable task body executed inline by the kernel:
	// no goroutine, no parker round-trip, no retained stack. See
	// Processor.NewContTask / NewPeriodicContTask.
	Continuation = rtos.Continuation
	// Yield is one typed suspension request returned by a Continuation.
	Yield = rtos.Yield
	// Program is a flat yield-op Continuation with counted/infinite loops.
	Program = rtos.Program
	// ProgramBuilder assembles a Program with a chain API.
	ProgramBuilder = rtos.ProgramBuilder
	// HWTask is a hardware task (not scheduled by any RTOS).
	HWTask = rtos.HWTask
	// HWConfig carries a hardware task's static parameters.
	HWConfig = rtos.HWConfig
	// HWCtx is the API a hardware behaviour uses.
	HWCtx = rtos.HWCtx
	// Policy is the pluggable scheduling policy interface.
	Policy = rtos.Policy
	// QuantumPolicy is a time-sharing policy with a quantum.
	QuantumPolicy = rtos.QuantumPolicy
	// PriorityPreemptive is fixed-priority preemptive scheduling.
	PriorityPreemptive = rtos.PriorityPreemptive
	// FIFO is first-come-first-served non-preemptive scheduling.
	FIFO = rtos.FIFO
	// RoundRobin is FIFO plus a time-slice quantum.
	RoundRobin = rtos.RoundRobin
	// EDF is earliest-deadline-first scheduling.
	EDF = rtos.EDF
	// Overheads bundles the three RTOS overhead parameters.
	Overheads = rtos.Overheads
	// OverheadFn computes an overhead duration from the system state.
	OverheadFn = rtos.OverheadFn
	// OverheadCtx is the state visible to an overhead formula.
	OverheadCtx = rtos.OverheadCtx
	// Constraint is a latency timing constraint.
	Constraint = rtos.Constraint
	// ConstraintSet verifies timing constraints during simulation.
	ConstraintSet = rtos.ConstraintSet
	// Violation is one recorded timing-constraint violation.
	Violation = rtos.Violation
	// InterruptController models a processor's interrupt hardware.
	InterruptController = rtos.InterruptController
	// IRQ is one interrupt line.
	IRQ = rtos.IRQ
	// ISRCtx is the API available inside an interrupt service routine.
	ISRCtx = rtos.ISRCtx
	// Server is an aperiodic server (polling or deferrable).
	Server = rtos.Server
	// ServerConfig carries an aperiodic server's parameters.
	ServerConfig = rtos.ServerConfig
	// AperiodicJob is one unit of aperiodic work for a Server.
	AperiodicJob = rtos.AperiodicJob
)

// Fault injection, recovery and failure diagnosis.
type (
	// WCETOverrun describes a worst-case-execution-time inflation fault
	// for Task.InjectWCETOverrun.
	WCETOverrun = rtos.WCETOverrun
	// MissPolicy selects a task's deadline-miss recovery action.
	MissPolicy = rtos.MissPolicy
	// MissInfo describes one deadline miss to an OnMissHook.
	MissInfo = rtos.MissInfo
	// Watchdog is a per-processor watchdog timer (kick or it fires).
	Watchdog = rtos.Watchdog
	// FinishReason tells why a run returned (quiescent, deadlock, ...).
	FinishReason = sim.FinishReason
	// SimReport summarizes a checked run.
	SimReport = sim.Report
	// SimError is the structured failure a RunChecked call returns.
	SimError = sim.SimError
	// BlockedProc names one process blocked forever and its wait object.
	BlockedProc = sim.BlockedProc
	// FaultRecord is one recorded fault/recovery/watchdog trace event.
	FaultRecord = trace.FaultRecord
	// FaultMetrics summarizes a run's fault-tolerance behaviour.
	FaultMetrics = analysis.FaultMetrics
)

// Deadline-miss recovery policies (TaskConfig.OnMiss).
const (
	MissContinue        = rtos.MissContinue
	MissAbortJob        = rtos.MissAbortJob
	MissSkipNextRelease = rtos.MissSkipNextRelease
	MissRestartTask     = rtos.MissRestartTask
)

// Finish reasons reported by System.FinishReason and SimReport.Reason.
const (
	FinishQuiescent = sim.FinishQuiescent
	FinishDeadlock  = sim.FinishDeadlock
	FinishLimit     = sim.FinishLimit
	FinishStopped   = sim.FinishStopped
	FinishPanic     = sim.FinishPanic
)

// Fault trace event kinds (FaultRecord.Kind).
const (
	FaultInjected = trace.FaultInjected
	RecoveryTaken = trace.RecoveryTaken
	WatchdogFired = trace.WatchdogFired
)

// ComputeFaultMetrics derives miss-rate, recovery-latency and degraded-mode
// metrics from recorded fault events (typically sys.Rec.FaultEvents()).
func ComputeFaultMetrics(events []FaultRecord, horizon Time) FaultMetrics {
	return analysis.ComputeFaultMetrics(events, horizon)
}

// Observability: the metrics registry every System carries (sys.Metrics) and
// its frozen snapshot form. Export helpers live on System —
// MetricsSnapshot, WriteMetricsJSON, WriteMetricsPrometheus and
// WritePerfetto (Perfetto/Chrome trace_event JSON).
type (
	// MetricsRegistry holds the named counters, gauges and histograms a
	// simulation records into (allocation-free on the hot paths).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a frozen, exportable copy of a registry's state.
	MetricsSnapshot = metrics.Snapshot
)

// RTOS engine kinds.
const (
	// EngineProcedural integrates the RTOS into the task state transitions
	// (paper section 4.2, the efficient default).
	EngineProcedural = rtos.EngineProcedural
	// EngineThreaded uses a dedicated RTOS scheduler thread (section 4.1).
	EngineThreaded = rtos.EngineThreaded
)

// Multi-core scheduling domains (Config.Domain, meaningful with Config.Cores
// greater than one).
const (
	// DomainPartitioned pins each task to its TaskConfig.Affinity core with a
	// private per-core ready queue; with one core it is exactly the paper's
	// single-CPU model.
	DomainPartitioned = rtos.DomainPartitioned
	// DomainGlobal shares one ready queue across all cores; tasks migrate and
	// each migration is counted and traced.
	DomainGlobal = rtos.DomainGlobal
)

// NewSystem creates an empty system with tracing enabled.
func NewSystem() *System { return rtos.NewSystem() }

// NewUntracedSystem creates a system with tracing disabled, for long
// simulations where the trace would grow without bound.
func NewUntracedSystem() *System { return rtos.NewUntracedSystem() }

// Fixed returns a constant overhead duration.
func Fixed(d Time) OverheadFn { return rtos.Fixed(d) }

// PerReadyTask returns the overhead formula base + slope·readyCount.
func PerReadyTask(base, slope Time) OverheadFn { return rtos.PerReadyTask(base, slope) }

// FixedOverheads builds Overheads from three constant durations.
func FixedOverheads(scheduling, save, load Time) Overheads {
	return rtos.FixedOverheads(scheduling, save, load)
}

// UniformOverheads sets all three RTOS durations to d.
func UniformOverheads(d Time) Overheads { return rtos.UniformOverheads(d) }

// AssignRateMonotonic assigns fixed priorities by the rate-monotonic rule.
func AssignRateMonotonic(tasks ...*Task) { rtos.AssignRateMonotonic(tasks...) }

// BuildProgram starts a chain-API builder for a continuation Program.
func BuildProgram() *ProgramBuilder { return rtos.BuildProgram() }

// Compute yields a preemptible CPU consumption of duration d.
func Compute(d Time) Yield { return rtos.Compute(d) }

// ComputeFn yields a CPU consumption whose duration fn computes at resume.
func ComputeFn(fn func(*TaskCtx) Time) Yield { return rtos.ComputeFn(fn) }

// WaitFor yields a relative sleep (the delay service).
func WaitFor(d Time) Yield { return rtos.WaitFor(d) }

// YieldCPU yields the processor to equal-priority peers.
func YieldCPU() Yield { return rtos.YieldCPU() }

// Finish yields job completion (also the Yield zero value).
func Finish() Yield { return rtos.Finish() }

// WaitOn yields a blocking wait on an event relation.
func WaitOn(e *Event) Yield { return rtos.WaitOn(e) }

// LockMutex yields a blocking mutex acquisition (Unlock is non-blocking: use
// ProgramBuilder.Unlock or a Do step).
func LockMutex(m *Mutex) Yield { return rtos.LockMutex(m) }

// PutMsg yields a blocking send of v into q.
func PutMsg[T any](q *Queue[T], v T) Yield { return rtos.PutMsg(q, v) }

// GetMsg yields a blocking receive from q into dst (nil discards).
func GetMsg[T any](q *Queue[T], dst *T) Yield { return rtos.GetMsg(q, dst) }

// LowerBody statically lowers an ordinary task body to a Program by
// recording; ok is false when the body observes the simulation (time, names,
// message values) and must stay on the goroutine engine.
func LowerBody(fn func(*TaskCtx)) (*Program, bool) { return rtos.LowerBody(fn) }

// LowerPeriodicBody lowers a periodic body; legal only when every cycle
// records the same ops (the recorder checks cycles 0 and 1).
func LowerPeriodicBody(body func(*TaskCtx, int)) (*Program, bool) {
	return rtos.LowerPeriodicBody(body)
}

// MCSE communication relations.
type (
	// Actor is anything that can block on and wake through relations.
	Actor = comm.Actor
	// Event is a synchronization relation with a memorization policy.
	Event = comm.Event
	// EventPolicy selects fugitive, boolean or counter memorization.
	EventPolicy = comm.EventPolicy
	// Mutex is a mutual-exclusion lock with a priority-ordered wait queue.
	Mutex = comm.Mutex
)

// Queue is a bounded message queue (producer/consumer relation).
type Queue[T any] = comm.Queue[T]

// Shared is a shared variable protected by mutual exclusion.
type Shared[T any] = comm.Shared[T]

// Event memorization policies.
const (
	Fugitive = comm.Fugitive
	Boolean  = comm.Boolean
	Counter  = comm.Counter
)

// NewEvent creates an event relation; rec is typically sys.Rec.
func NewEvent(rec *Recorder, name string, policy EventPolicy) *Event {
	return comm.NewEvent(rec, name, policy)
}

// NewQueue creates a bounded message queue.
func NewQueue[T any](rec *Recorder, name string, capacity int) *Queue[T] {
	return comm.NewQueue[T](rec, name, capacity)
}

// NewShared creates a shared variable.
func NewShared[T any](rec *Recorder, name string, initial T) *Shared[T] {
	return comm.NewShared(rec, name, initial)
}

// NewInheritShared creates a shared variable whose lock applies the
// priority-inheritance protocol.
func NewInheritShared[T any](rec *Recorder, name string, initial T) *Shared[T] {
	return comm.NewInheritShared(rec, name, initial)
}

// NewMutex creates a mutual-exclusion lock.
func NewMutex(rec *Recorder, name string) *Mutex { return comm.NewMutex(rec, name) }

// NewInheritMutex creates a lock applying the priority-inheritance protocol.
func NewInheritMutex(rec *Recorder, name string) *Mutex { return comm.NewInheritMutex(rec, name) }

// NewCeilingMutex creates a lock applying the immediate priority-ceiling
// protocol.
func NewCeilingMutex(rec *Recorder, name string, ceiling int) *Mutex {
	return comm.NewCeilingMutex(rec, name, ceiling)
}

// Shared interconnect modelling (the "communications network" dimension).
type (
	// Bus is a shared, serialized transfer medium with priority arbitration.
	Bus = bus.Bus
	// BusConfig carries a bus's physical parameters.
	BusConfig = bus.Config
)

// BusChannel is a typed message queue whose Send pays for the transfer on a
// shared bus.
type BusChannel[T any] = bus.Channel[T]

// NewBus creates a shared transfer medium; rec is typically sys.Rec.
func NewBus(rec *Recorder, name string, cfg BusConfig) *Bus { return bus.New(rec, name, cfg) }

// NewBusChannel creates a typed channel of the given capacity over a bus.
func NewBusChannel[T any](b *Bus, name string, capacity int, size func(T) int) *BusChannel[T] {
	return bus.NewChannel(b, name, capacity, size)
}

// Tracing, timeline and statistics.
type (
	// Recorder accumulates the execution trace.
	Recorder = trace.Recorder
	// TimelineOptions configures the ASCII TimeLine renderer.
	TimelineOptions = trace.TimelineOptions
	// Stats is the statistics report (the paper's Figure 8 view).
	Stats = trace.Stats
	// TaskStats is one task's time distribution.
	TaskStats = trace.TaskStats
	// TaskState is a task scheduling state.
	TaskState = trace.TaskState
)

// ParseScenario decodes and validates a JSON system description (see
// internal/scenario for the format).
func ParseScenario(data []byte) (*ScenarioSystem, error) { return scenario.Parse(data) }

// ScenarioSystem is a declarative system description.
type ScenarioSystem = scenario.System

// ParseDuration parses "5us", "1.5ms", "250ns" into a Time.
func ParseDuration(s string) (Time, error) { return scenario.ParseDuration(s) }

// Schedulability analysis (cross-validated against the simulation).
type (
	// AnalysisTask describes a periodic task for schedulability analysis.
	AnalysisTask = analysis.TaskSpec
	// RTAResult is the outcome of a response-time analysis.
	RTAResult = analysis.RTAResult
)

// TaskSetUtilization returns the total utilization sum(C/T).
func TaskSetUtilization(tasks []AnalysisTask) float64 { return analysis.Utilization(tasks) }

// LiuLaylandBound returns the RM utilization bound n(2^(1/n)-1).
func LiuLaylandBound(n int) float64 { return analysis.LiuLaylandBound(n) }

// AssignRMSpecs returns a copy of the set with rate-monotonic priorities.
func AssignRMSpecs(tasks []AnalysisTask) []AnalysisTask { return analysis.AssignRM(tasks) }

// ResponseTimes performs exact response-time analysis for fixed-priority
// preemptive scheduling with an optional per-switch overhead.
func ResponseTimes(tasks []AnalysisTask, switchOverhead Time) (RTAResult, error) {
	return analysis.ResponseTimes(tasks, switchOverhead)
}

// EDFSchedulable applies the exact processor-demand test for EDF.
func EDFSchedulable(tasks []AnalysisTask) (bool, error) { return analysis.EDFSchedulable(tasks) }

// SchedulabilityReport renders the analytical verdicts for a task set.
func SchedulabilityReport(tasks []AnalysisTask, switchOverhead Time) string {
	return analysis.Report(tasks, switchOverhead)
}

// CoreLoad is one core's load share extracted from a multi-core trace.
type CoreLoad = analysis.CoreLoad

// CoreLoads computes per-core utilization and migration counts from a
// recorded trace (typically sys.Rec) over [0, end]; end zero uses the
// trace's natural end.
func CoreLoads(rec *Recorder, end Time) []CoreLoad { return analysis.CoreLoads(rec, end) }

// PartitionFirstFit packs a task set onto m cores (first-fit decreasing)
// under a per-core utilization bound; nil bound means 1.0 (per-core EDF).
func PartitionFirstFit(tasks []AnalysisTask, m int, bound func(coreTasks int) float64) (analysis.Partition, error) {
	return analysis.PartitionFirstFit(tasks, m, bound)
}

// GlobalEDFSchedulable applies the Goossens-Funk-Baruah sufficient
// utilization bound for global EDF on m identical cores.
func GlobalEDFSchedulable(tasks []AnalysisTask, m int) (bool, error) {
	return analysis.GlobalEDFSchedulable(tasks, m)
}
