package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile starts CPU profiling into path and returns the stop
// function; path "" is a no-op. The stop function must run before the process
// exits (including the os.Exit paths), so callers invoke it explicitly rather
// than defer it past an Exit.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		fatal(err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote CPU profile %s\n", path)
	}
}

// writeMemProfile writes an allocation profile to path; "" is a no-op. A GC
// runs first so the heap profile reflects live objects, matching the behavior
// of `go test -memprofile`.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote memory profile %s\n", path)
}
