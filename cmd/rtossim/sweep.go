package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/batch"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// sweepMain implements `rtossim sweep [flags] sweep.json`: a parallel
// parameter sweep of one base scenario over the cross-product of the spec's
// axes (engines, policies, speeds, overhead sets, fault seeds). The sweep
// itself runs in internal/runner; this wrapper only resolves files and flags.
func sweepMain(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		workers  = fs.Int("workers", 0, "worker pool size (0: the spec's workers field, then GOMAXPROCS)")
		table    = fs.Bool("table", true, "print the per-variant result table")
		jsonPath = fs.String("json", "", "write the results as JSON to this file")
		quiet    = fs.Bool("quiet", false, "suppress the progress line")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprof  = fs.String("memprofile", "", "write a memory profile to this file after the sweep")
		remote   = fs.String("remote", "", "run through a rtossimd daemon at this address instead of in process")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rtossim sweep [flags] sweep.json\n\n")
		fmt.Fprintf(fs.Output(), "The sweep file names a base scenario and the axes to cross, e.g.:\n")
		fmt.Fprintf(fs.Output(), `  {"scenario": "figure6.json", "engines": ["procedural", "threaded"],`+"\n")
		fmt.Fprintf(fs.Output(), `   "policies": ["priority", "edf"], "speeds": [0.5, 1, 2], "seeds": [1, 2, 3]}`+"\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	specPath := fs.Arg(0)
	specData, err := os.ReadFile(specPath)
	if err != nil {
		fatal(err)
	}
	spec, err := batch.ParseSpec(specData)
	if err != nil {
		fatal(err)
	}
	if spec.Scenario == "" {
		fatal(fmt.Errorf("sweep spec %s names no base scenario", specPath))
	}
	// The base scenario path is relative to the spec file.
	scenPath := spec.Scenario
	if !filepath.IsAbs(scenPath) {
		scenPath = filepath.Join(filepath.Dir(specPath), scenPath)
	}
	base, err := os.ReadFile(scenPath)
	if err != nil {
		fatal(err)
	}
	if _, err := scenario.Parse(base); err != nil {
		fatal(fmt.Errorf("base scenario %s: %w", scenPath, err))
	}

	if *remote != "" {
		specJSON, err := injectWorkers(specData, *workers)
		if err != nil {
			fatal(err)
		}
		remoteSweep(*remote, specJSON, base, *jsonPath, *quiet)
		return
	}

	opts := runner.SweepOptions{Workers: *workers, NoTable: !*table}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	stopCPUProfile := startCPUProfile(*cpuprof)
	res, err := runner.Sweep(spec, base, opts)
	stopCPUProfile()
	writeMemProfile(*memprof)
	if err != nil {
		fatal(err)
	}

	os.Stdout.Write(res.Report)

	if *jsonPath != "" {
		data, err := res.ResultsJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	os.Exit(res.ExitCode())
}
