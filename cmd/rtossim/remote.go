package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/runner"
	"repro/internal/server"
)

// This file implements -remote: the same subcommands, executed by a rtossimd
// daemon instead of in process. The output contract is byte-identity — the
// report on stdout, the "wrote file" notices, the simulation-failure block on
// stderr and the exit code are exactly what the local run produces, because
// the daemon composes them in the same internal/runner pipeline. Only
// host-local concerns (profiling, explore -replay) stay local-only.

func newRemoteClient(addr string) *client.Client {
	c := client.New(addr)
	c.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rtossim: "+format+"\n", args...)
	}
	return c
}

// remoteFinish waits a submitted job to its terminal state and maps
// non-done outcomes onto the CLI's error behavior (exit 2, like any other
// pipeline failure).
func remoteFinish(c *client.Client, id string, onEvent func(server.Event)) *server.Job {
	job, err := c.Wait(context.Background(), id, onEvent)
	if err != nil {
		fatal(err)
	}
	switch job.State {
	case server.StateDone:
		return job
	case server.StateFailed:
		fatal(fmt.Errorf("remote job %s failed: %s", id, job.Error))
	case server.StateCanceled:
		fatal(fmt.Errorf("remote job %s was canceled", id))
	default:
		fatal(fmt.Errorf("remote job %s ended in unexpected state %s", id, job.State))
	}
	return nil
}

// remoteSimulate runs one scenario through the daemon: submit, wait, print
// the report, write the requested artifact files, mirror the local exit code.
func remoteSimulate(addr string, data []byte, opts runner.Options, files map[string]string) {
	c := newRemoteClient(addr)
	sub, err := c.Submit(server.Request{Scenario: data, Options: opts})
	if err != nil {
		fatal(err)
	}
	job := remoteFinish(c, sub.ID, nil)

	report, err := c.Report(job.ID)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(report)
	res := job.Result
	if res == nil {
		fatal(fmt.Errorf("remote job %s returned no result", job.ID))
	}
	if res.SimError != "" {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "rtossim: simulation failed:")
		for _, line := range strings.Split(res.SimError, "\n") {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
	}
	for _, name := range opts.Artifacts {
		data, err := c.Artifact(job.ID, name)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(files[name], data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", files[name])
	}
	os.Exit(res.ExitCode())
}

// injectWorkers folds the CLI's -workers override into the sweep spec JSON:
// the daemon reads the worker count from the spec, so the flag must travel
// inside it. A zero override leaves the spec untouched.
func injectWorkers(spec []byte, workers int) ([]byte, error) {
	if workers == 0 {
		return spec, nil
	}
	var m map[string]any
	if err := json.Unmarshal(spec, &m); err != nil {
		return nil, fmt.Errorf("sweep spec: %w", err)
	}
	m["workers"] = workers
	return json.Marshal(m)
}

// remoteSweep runs a sweep through the daemon. The spec travels as JSON with
// the -workers override injected (the daemon reads the worker count from the
// spec, not from a flag), and the base scenario is embedded in the request —
// the daemon never touches the filesystem.
func remoteSweep(addr string, spec []byte, base []byte, jsonPath string, quiet bool) {
	c := newRemoteClient(addr)
	sub, err := c.Submit(server.Request{Kind: server.KindSweep, Scenario: base, Sweep: spec})
	if err != nil {
		fatal(err)
	}
	onEvent := func(ev server.Event) {
		if quiet || ev.Total == 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "\rsweep: %d/%d", ev.Done, ev.Total)
		if ev.Done == ev.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
	job := remoteFinish(c, sub.ID, onEvent)

	report, err := c.Report(job.ID)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(report)
	if jsonPath != "" {
		data, err := c.Results(job.ID)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if job.SweepSummary != nil && job.SweepSummary.Failures > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// remoteExplore runs a schedule-space exploration through the daemon.
// -replay stays local-only: replaying a decoded trace is interactive
// single-run work, not a queued job.
func remoteExplore(addr string, data []byte, opts runner.ExploreOptions, metricsPath string, expectViol bool) {
	c := newRemoteClient(addr)
	sub, err := c.Submit(server.Request{Kind: server.KindExplore, Scenario: data, Explore: opts})
	if err != nil {
		fatal(err)
	}
	job := remoteFinish(c, sub.ID, nil)

	report, err := c.Report(job.ID)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(report)
	if metricsPath != "" {
		data, err := c.Metrics(job.ID)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(metricsPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsPath)
	}
	if expectViol {
		if job.ExploreSummary != nil {
			for _, v := range job.ExploreSummary.Violations {
				if v.Replayed {
					return
				}
			}
		}
		fmt.Fprintln(os.Stderr, "rtossim: expected at least one replay-verified violation, found none")
		os.Exit(1)
	}
	if job.Violations > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}
