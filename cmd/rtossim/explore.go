package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/explore"
	"repro/internal/runner"
)

// exploreMain implements `rtossim explore [flags] scenario.json`: bounded
// schedule-space exploration of one scenario — enumerate same-instant
// tie-break orderings and release-jitter perturbations, check invariants,
// and emit a minimized replayable choice trace for every violation. The
// exploration itself runs in internal/runner; replay stays here because a
// single decoded trace is a CLI-interactive affair.
func exploreMain(args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		runs         = fs.Int("runs", 0, "override the interleaving bound (0: the scenario's maxRuns, then 256)")
		depth        = fs.Int("depth", 0, "override the branching depth bound (0: the scenario's maxDepth, then 32)")
		workers      = fs.Int("workers", 0, "worker pool size per frontier wave (0: GOMAXPROCS)")
		replay       = fs.String("replay", "", "replay one encoded choice trace (xt1:...) instead of exploring")
		expectViol   = fs.Bool("expect-violation", false, "exit 0 only when at least one violation is found and its replay verified (for CI smoke checks)")
		checkEngines = fs.Bool("check-engines", false, "compare every interleaving's trace signature across both RTOS engines")
		metricsPath  = fs.String("metrics", "", "write the exploration metrics registry as JSON to this file")
		remote       = fs.String("remote", "", "run through a rtossimd daemon at this address instead of in process")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rtossim explore [flags] scenario.json\n\n")
		fmt.Fprintf(fs.Output(), "The scenario's explore block declares jitter bounds and invariants, e.g.:\n")
		fmt.Fprintf(fs.Output(), `  "explore": {"jitter": {"beat": "95us"}, "expectedMiss": ["ctrl"], "maxRuns": 128}`+"\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *remote != "" {
		if *replay != "" {
			fatal(fmt.Errorf("-replay is local-only (replaying a trace is a single interactive run, not a queued job)"))
		}
		remoteExplore(*remote, data, runner.ExploreOptions{
			Runs:         *runs,
			Depth:        *depth,
			Workers:      *workers,
			CheckEngines: *checkEngines,
		}, *metricsPath, *expectViol)
		return
	}

	if *replay != "" {
		eng, err := explore.New(data)
		if err != nil {
			fatal(err)
		}
		if *depth > 0 {
			eng.Cfg.MaxDepth = *depth
		}
		tr, err := explore.Decode(*replay)
		if err != nil {
			fatal(err)
		}
		r, v, err := eng.Replay(tr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replay: %d decision(s), simulated to %v, finished %s\n",
			len(tr.Decisions), r.End, r.Finish)
		if v == nil {
			fmt.Println("replay satisfies every invariant")
			if *expectViol {
				os.Exit(1)
			}
			return
		}
		fmt.Printf("replay reproduces violation [%s]: %s\n", v.Kind, v.Detail)
		if !*expectViol {
			os.Exit(1)
		}
		return
	}

	res, err := runner.Explore(data, runner.ExploreOptions{
		Runs:         *runs,
		Depth:        *depth,
		Workers:      *workers,
		CheckEngines: *checkEngines,
	}, fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(res.Report)
	if *metricsPath != "" {
		if err := os.WriteFile(*metricsPath, res.MetricsJSON, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsPath)
	}
	if *expectViol {
		for _, v := range res.Summary.Violations {
			if v.Replayed {
				return
			}
		}
		fmt.Fprintln(os.Stderr, "rtossim: expected at least one replay-verified violation, found none")
		os.Exit(1)
	}
	os.Exit(res.ExitCode())
}
