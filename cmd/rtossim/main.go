// Command rtossim simulates a real-time system described in a JSON scenario
// file using the generic RTOS model and reports timelines, statistics,
// timing-constraint verdicts, and CSV/VCD trace exports.
//
// It is a thin client of internal/runner — the same pipeline the rtossimd
// daemon serves over HTTP — so the report printed here is byte-identical to
// the one a daemon job for the same scenario and options returns.
//
// Usage:
//
//	rtossim [flags] scenario.json
//	rtossim sweep [flags] sweep.json
//	rtossim explore [flags] scenario.json
//
// Examples:
//
//	rtossim -timeline -stats examples/scenarios/figure6.json
//	rtossim sweep -workers 8 examples/scenarios/sweep.json
//	rtossim explore -runs 64 examples/scenarios/faults.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/runner"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explore" {
		exploreMain(os.Args[2:])
		return
	}
	var (
		until       = flag.String("until", "", "override the scenario horizon (e.g. 2ms)")
		engine      = flag.String("engine", "", "override every processor's engine: procedural or threaded")
		taskEngine  = flag.String("taskengine", "", "override every software task's body form: goroutine or continuation")
		shards      = flag.Int("shards", 0, "run the sharded parallel engine on up to N kernels (0 = sequential unless the scenario carries shard labels)")
		timeline    = flag.Bool("timeline", false, "print the ASCII TimeLine chart")
		width       = flag.Int("width", 100, "timeline width in columns")
		accesses    = flag.Bool("accesses", false, "show communication accesses on the timeline")
		stats       = flag.Bool("stats", true, "print the statistics report")
		chronology  = flag.Bool("chronology", false, "print the chronological event listing")
		constraints = flag.Bool("constraints", true, "print the timing-constraint report")
		csvPath     = flag.String("csv", "", "write the trace as CSV to this file")
		vcdPath     = flag.String("vcd", "", "write the trace as VCD to this file")
		jsonPath    = flag.String("json", "", "write the trace as JSON to this file")
		svgPath     = flag.String("svg", "", "write the TimeLine chart as SVG to this file")
		analyze     = flag.Bool("analyze", false, "print schedulability analysis for periodic tasks before simulating")
		faults      = flag.Bool("faults", true, "print the fault-tolerance report when faults were recorded")
		metricsPath = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		promPath    = flag.String("prom", "", "write the metrics registry as Prometheus text to this file")
		perfetto    = flag.String("perfetto", "", "write the trace as Perfetto/Chrome trace_event JSON to this file")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprofile  = flag.String("memprofile", "", "write a memory profile to this file after the simulation")
		remote      = flag.String("remote", "", "run through a rtossimd daemon at this address instead of in process")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtossim [flags] scenario.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := runner.Options{
		Until:         *until,
		Engine:        *engine,
		TaskEngine:    *taskEngine,
		Shards:        *shards,
		Analyze:       *analyze,
		Timeline:      *timeline,
		Width:         *width,
		Accesses:      *accesses,
		Chronology:    *chronology,
		NoStats:       !*stats,
		NoConstraints: !*constraints,
		NoFaults:      !*faults,
	}
	// File flags map one-to-one onto runner artifacts.
	files := map[string]string{
		"csv": *csvPath, "vcd": *vcdPath, "json": *jsonPath, "svg": *svgPath,
		"metrics": *metricsPath, "prom": *promPath, "perfetto": *perfetto,
	}
	for _, name := range runner.KnownArtifacts {
		if files[name] != "" {
			opts.Artifacts = append(opts.Artifacts, name)
		}
	}

	if *remote != "" {
		remoteSimulate(*remote, data, opts, files)
		return
	}

	stopCPUProfile := startCPUProfile(*cpuprofile)
	res, err := runner.Run(data, opts, flag.Arg(0))
	stopCPUProfile()
	writeMemProfile(*memprofile)
	if err != nil {
		fatal(err)
	}

	os.Stdout.Write(res.Report)
	if res.SimError != "" {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "rtossim: simulation failed:")
		for _, line := range strings.Split(res.SimError, "\n") {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
	}
	for _, name := range opts.Artifacts {
		path := files[name]
		if err := os.WriteFile(path, res.Artifacts[name], 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	os.Exit(res.ExitCode())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtossim:", err)
	os.Exit(2)
}
