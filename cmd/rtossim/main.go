// Command rtossim simulates a real-time system described in a JSON scenario
// file using the generic RTOS model and reports timelines, statistics,
// timing-constraint verdicts, and CSV/VCD trace exports.
//
// Usage:
//
//	rtossim [flags] scenario.json
//	rtossim sweep [flags] sweep.json
//	rtossim explore [flags] scenario.json
//
// Examples:
//
//	rtossim -timeline -stats examples/scenarios/figure6.json
//	rtossim sweep -workers 8 examples/scenarios/sweep.json
//	rtossim explore -runs 64 examples/scenarios/faults.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explore" {
		exploreMain(os.Args[2:])
		return
	}
	var (
		until       = flag.String("until", "", "override the scenario horizon (e.g. 2ms)")
		engine      = flag.String("engine", "", "override every processor's engine: procedural or threaded")
		taskEngine  = flag.String("taskengine", "", "override every software task's body form: goroutine or continuation")
		timeline    = flag.Bool("timeline", false, "print the ASCII TimeLine chart")
		width       = flag.Int("width", 100, "timeline width in columns")
		accesses    = flag.Bool("accesses", false, "show communication accesses on the timeline")
		stats       = flag.Bool("stats", true, "print the statistics report")
		chronology  = flag.Bool("chronology", false, "print the chronological event listing")
		constraints = flag.Bool("constraints", true, "print the timing-constraint report")
		csvPath     = flag.String("csv", "", "write the trace as CSV to this file")
		vcdPath     = flag.String("vcd", "", "write the trace as VCD to this file")
		jsonPath    = flag.String("json", "", "write the trace as JSON to this file")
		svgPath     = flag.String("svg", "", "write the TimeLine chart as SVG to this file")
		analyze     = flag.Bool("analyze", false, "print schedulability analysis for periodic tasks before simulating")
		faults      = flag.Bool("faults", true, "print the fault-tolerance report when faults were recorded")
		metricsPath = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		promPath    = flag.String("prom", "", "write the metrics registry as Prometheus text to this file")
		perfetto    = flag.String("perfetto", "", "write the trace as Perfetto/Chrome trace_event JSON to this file")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprofile  = flag.String("memprofile", "", "write a memory profile to this file after the simulation")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtossim [flags] scenario.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	desc, err := scenario.Parse(data)
	if err != nil {
		fatal(err)
	}
	if *until != "" {
		h, err := scenario.ParseDuration(*until)
		if err != nil {
			fatal(err)
		}
		desc.Horizon = scenario.Duration(h)
	}
	switch *engine {
	case "":
	case "procedural", "threaded":
		for i := range desc.Processors {
			desc.Processors[i].Engine = *engine
		}
	default:
		fatal(fmt.Errorf("unknown engine %q (want procedural or threaded)", *engine))
	}
	switch *taskEngine {
	case "":
	case "goroutine", "continuation":
		for i := range desc.Tasks {
			desc.Tasks[i].Engine = *taskEngine
		}
		// Re-validate: some bodies (bus send/recv) have no continuation form.
		if err := desc.Validate(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown task engine %q (want goroutine or continuation)", *taskEngine))
	}
	if *analyze {
		fmt.Print(desc.AnalysisReport())
		fmt.Println()
	}
	built, err := desc.Build()
	if err != nil {
		fatal(err)
	}
	stopCPUProfile := startCPUProfile(*cpuprofile)
	_, runErr := built.RunChecked()
	stopCPUProfile()
	writeMemProfile(*memprofile)

	sys := built.Sys
	name := desc.Name
	if name == "" {
		name = flag.Arg(0)
	}
	fmt.Printf("scenario %s simulated to %v, finished %v (%d kernel activations, %d delta cycles)\n",
		name, sys.Now(), sys.FinishReason(), sys.K.Activations(), sys.K.DeltaCount())
	if runErr != nil {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "rtossim: simulation failed:")
		for _, line := range strings.Split(runErr.Error(), "\n") {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
	}

	if blocked := sys.BlockedTasks(); len(blocked) > 0 {
		fmt.Printf("warning: %d task(s) still blocked at the end:", len(blocked))
		for _, t := range blocked {
			fmt.Printf(" %s(%v)", t.Name(), t.State())
		}
		fmt.Println()
	}
	if *timeline {
		fmt.Println()
		fmt.Print(sys.Timeline(trace.TimelineOptions{
			Width:        *width,
			ShowAccesses: *accesses,
			Legend:       true,
		}))
	}
	if *chronology {
		fmt.Println()
		fmt.Print(sys.Chronology())
	}
	if *stats {
		fmt.Println()
		fmt.Print(sys.Stats(0).String())
		for _, cpu := range sys.Processors() {
			if cpu.Cores() > 1 {
				fmt.Println()
				fmt.Print(analysis.CoreLoadReport(analysis.CoreLoads(sys.Rec, 0)))
				break
			}
		}
	}
	if *constraints {
		fmt.Println()
		fmt.Print(sys.Constraints.Report())
	}
	if evs := sys.Rec.FaultEvents(); *faults && len(evs) > 0 {
		m := analysis.ComputeFaultMetrics(evs, sys.Now())
		for _, t := range built.Tasks {
			m.Jobs += int(t.CompletedCycles() + t.AbortedCycles())
			m.AbortedJobs += int(t.AbortedCycles())
		}
		for _, v := range sys.Constraints.Violations() {
			if strings.HasSuffix(v.Name, ".deadline") {
				m.Misses++
			}
		}
		fmt.Println()
		fmt.Print(m.Report())
	}
	if *csvPath != "" {
		writeFile(*csvPath, sys.WriteCSV)
	}
	if *vcdPath != "" {
		writeFile(*vcdPath, sys.WriteVCD)
	}
	if *jsonPath != "" {
		writeFile(*jsonPath, sys.WriteJSON)
	}
	if *svgPath != "" {
		writeFile(*svgPath, func(w io.Writer) error {
			return sys.WriteSVG(w, trace.SVGOptions{ShowAccesses: *accesses})
		})
	}
	if *metricsPath != "" {
		writeFile(*metricsPath, sys.WriteMetricsJSON)
	}
	if *promPath != "" {
		writeFile(*promPath, sys.WriteMetricsPrometheus)
	}
	if *perfetto != "" {
		writeFile(*perfetto, sys.WritePerfetto)
	}
	if runErr != nil || !sys.Constraints.OK() {
		os.Exit(1)
	}
}

func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtossim:", err)
	os.Exit(2)
}
