// Command experiments regenerates every figure and claim of the paper's
// evaluation (DESIGN.md experiments E1..E11) and prints paper-vs-measured
// comparisons. Run all experiments with no arguments, or select with -exp.
//
// Usage:
//
//	experiments [-exp e1,e4,e7] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/mpeg2"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
)

var (
	verbose   = flag.Bool("v", false, "print timelines and full statistics")
	artifacts = flag.String("artifacts", "", "directory to write SVG timeline charts of the figure experiments")
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (e1..e15); empty runs all")
	flag.Parse()
	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}

	all := map[string]func(){
		"e1":  runE1,
		"e2":  runE2,
		"e3":  runE3,
		"e4":  runE4,
		"e5":  runE5,
		"e6":  runE6,
		"e7":  runE7,
		"e8":  runE8,
		"e9":  runE9,
		"e10": runE10,
		"e11": runE11,
		"e12": runE12,
		"e13": runE13,
		"e14": runE14,
		"e15": runE15,
	}
	var ids []string
	if *expFlag == "" {
		for id := range all {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if len(ids[i]) != len(ids[j]) {
				return len(ids[i]) < len(ids[j])
			}
			return ids[i] < ids[j]
		})
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	for _, id := range ids {
		f, ok := all[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
		f()
		fmt.Println()
	}
}

func header(id, paper string) {
	fmt.Printf("=== %s — %s ===\n", strings.ToUpper(id), paper)
}

// runEngineDemo runs the Figure 6 workload on one engine and reports the
// switch counts, used by E1 and E2.
func runEngineDemo(id string, eng rtos.EngineKind, figure string) {
	header(id, figure)
	r := experiments.RunFigure6(experiments.Figure6Config{Engine: eng})
	fmt.Printf("engine: %v\n", eng)
	fmt.Printf("kernel thread switches for one clock cycle: %d\n", r.Activations)
	fmt.Printf("task/RTOS state machinery: F1 preempts F3 at %v after the %v clock edge\n",
		r.F1PreemptStart, r.ClockEdge)
	if *verbose {
		fmt.Print(r.Fig.Sys.Timeline(trace.TimelineOptions{Width: 110, Legend: true}))
	}
}

func runE1() {
	runEngineDemo("e1", rtos.EngineThreaded,
		"Fig. 2/3: task scheduling with a dedicated RTOS thread (section 4.1)")
}

func runE2() {
	runEngineDemo("e2", rtos.EngineProcedural,
		"Fig. 4/5: task scheduling using procedure calls (section 4.2)")
}

func runE3() {
	header("e3", "section 4 claim: the procedural model needs fewer thread switches and simulates faster")
	fmt.Printf("%6s %14s %14s %8s %10s %10s %8s\n",
		"tasks", "switches(thr)", "switches(proc)", "ratio", "wall(thr)", "wall(proc)", "speedup")
	for _, n := range []int{2, 5, 10, 20, 50} {
		r := experiments.RunEngineComparison(n, 50*sim.Ms)
		same := "OK"
		if r.SimulatedEnd[rtos.EngineProcedural] != r.SimulatedEnd[rtos.EngineThreaded] ||
			r.Dispatches[rtos.EngineProcedural] != r.Dispatches[rtos.EngineThreaded] {
			same = "MISMATCH"
		}
		fmt.Printf("%6d %14d %14d %7.2fx %10v %10v %7.2fx  behaviour %s\n",
			n,
			r.Activations[rtos.EngineThreaded], r.Activations[rtos.EngineProcedural],
			r.SwitchRatio(),
			r.Wall[rtos.EngineThreaded].Round(10_000), r.Wall[rtos.EngineProcedural].Round(10_000),
			r.Speedup(), same)
	}
	fmt.Println("paper: \"fewer thread switches occur than in the previous solution\"; both engines must")
	fmt.Println("       produce identical model behaviour (section 4.2 keeps \"the model's possibilities\").")
	fmt.Println()
	fmt.Println("same argument one level down: what servicing one interrupt costs the kernel")
	fmt.Printf("%10s %12s %14s %12s %14s\n",
		"isr", "interrupts", "activations", "acts/irq", "methods/irq")
	for _, v := range []experiments.ISRVariant{experiments.ISRThreaded, experiments.ISRInline} {
		r := experiments.RunISRActivations(v, 50*sim.Ms)
		fmt.Printf("%10s %12d %14d %12.2f %14.2f\n",
			v, r.Interrupts, r.Activations, r.ActivationsPerIRQ(), r.MethodRunsPerIRQ())
	}
	fmt.Println("the inline (method-ized) controller services interrupts with zero process")
	fmt.Println("activations: the state machine runs as kernel method calls on the current stack.")
}

func runE4() {
	header("e4", "Fig. 6: TimeLine with 5us scheduling/context-load/context-save overheads")
	r := experiments.RunFigure6(experiments.Figure6Config{})
	rows := []struct {
		what  string
		paper string
		got   string
		ok    bool
	}{
		{"(1) Clk edge wakes Function_1", "clock notification instant", r.ClockEdge.String(), r.ClockEdge == 500*sim.Us},
		{"(b) preemption overhead", "15us (save+sched+load)", (r.F1PreemptStart - r.ClockEdge).String(), r.F1PreemptStart-r.ClockEdge == 15*sim.Us},
		{"(2) Event_1 wakes Function_2", "during Function_1 processing", r.Event1Signal.String(), r.Event1Signal > r.F1PreemptStart && r.Event1Signal < r.F1End},
		{"(c) no overhead, no preemption", "F2 ready exactly at the signal", (r.F2ReadyAt - r.Event1Signal).String(), r.F2ReadyAt == r.Event1Signal},
		{"(a) end-of-task overhead", "15us", (r.F2Start - r.F1End).String(), r.F2Start-r.F1End == 15*sim.Us},
		{"F3 resumes after F2 blocks", "resumes where preempted", r.F3ResumeAt.String(), r.F3ResumeAt > r.F2Start},
	}
	printChecks(rows)
	if *verbose {
		fmt.Print(r.Fig.Sys.Timeline(trace.TimelineOptions{Width: 110, ShowAccesses: true, Legend: true}))
	}
	writeArtifact("figure6.svg", func(w io.Writer) error {
		return r.Fig.Sys.WriteSVG(w, trace.SVGOptions{ShowAccesses: true})
	})
}

// writeArtifact saves an SVG chart into the -artifacts directory if set.
func writeArtifact(name string, write func(io.Writer) error) {
	if *artifacts == "" {
		return
	}
	path := filepath.Join(*artifacts, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func printChecks(rows []struct {
	what  string
	paper string
	got   string
	ok    bool
}) {
	fails := 0
	for _, row := range rows {
		status := "ok"
		if !row.ok {
			status = "FAIL"
			fails++
		}
		fmt.Printf("  %-34s paper: %-32s measured: %-12s [%s]\n", row.what, row.paper, row.got, status)
	}
	if fails > 0 {
		fmt.Printf("  %d check(s) FAILED\n", fails)
	}
}

func runE5() {
	header("e5", "Fig. 7: mutual-exclusion blocking on SharedVar_1 (priority inversion)")
	for _, mode := range []experiments.Figure7Mode{experiments.Figure7Plain, experiments.Figure7NoPreempt} {
		r := experiments.RunFigure7(rtos.EngineProcedural, mode)
		fmt.Printf("mode %-22s", mode)
		if mode == experiments.Figure7Plain {
			fmt.Printf(" (1) F3 preempted in read @ %v, (2) F2 blocked @ %v, (3) released @ %v, F2 lock @ %v\n",
				r.F3PreemptedInRead, r.F2BlockedAt, r.F3Release, r.F2GotLockAt)
			fmt.Printf("%27sF2 resource wait %v, F1 reaction latency %v\n", "", r.ResourceWait, r.F1ReactionLatency)
		} else {
			fmt.Printf(" F2 resource wait %v (paper: inversion \"can be avoided by disabling preemption\"),\n", r.ResourceWait)
			fmt.Printf("%27sF1 reaction latency %v (the price paid)\n", "", r.F1ReactionLatency)
		}
		if *verbose {
			fmt.Print(r.Sys.Timeline(trace.TimelineOptions{Width: 110, ShowAccesses: true, Legend: true}))
		}
		if mode == experiments.Figure7Plain {
			writeArtifact("figure7.svg", func(w io.Writer) error {
				return r.Sys.WriteSVG(w, trace.SVGOptions{ShowAccesses: true})
			})
		}
	}
}

func runE6() {
	header("e6", "Fig. 8: statistics from a TimeLine (activity/preempted/resource/utilization ratios)")
	r := experiments.RunFigure7(rtos.EngineProcedural, experiments.Figure7Plain)
	fmt.Print(r.Sys.Stats(0).String())
}

func runE7() {
	header("e7", "section 5: MPEG-2 codec SoC, 18 tasks on 6 processors (3 SW with RTOS)")
	res := mpeg2.Run(mpeg2.Config{}, 10*mpeg2.FramePeriod)
	fmt.Printf("tasks: %d, simulated: %v (10 frames at 25 fps)\n", res.TaskCount, res.Horizon)
	fmt.Printf("encoded slices: %d, displayed slices: %d\n", res.EncodedSlices, res.DisplayedSlices)
	fmt.Printf("worst encode latency: %v, worst decode latency: %v, violations: %d\n",
		res.EncodeWorst, res.DecodeWorst, res.Violations)
	for _, cpu := range []string{"cpu-ctrl", "cpu-enc", "cpu-dec"} {
		fmt.Printf("  %-10s load %5.1f%%  rtos overhead %5.2f%%\n",
			cpu, res.Load[cpu]*100, res.OverheadRatio[cpu]*100)
	}
}

func runE8() {
	header("e8", "section 3.2: overhead parameters as fixed values or formulas of system state")
	fmt.Printf("%-22s %8s %8s %8s %14s\n", "overhead", "misses", "ovhd%", "load%", "mean sched")
	for _, r := range experiments.OverheadSuite(500 * sim.Ms) {
		fmt.Printf("%-22s %8d %7.2f%% %7.2f%% %14v\n",
			r.Formula, r.DeadlineMisses, r.OverheadRatio*100, r.CPULoad*100, r.MeanScheduling)
	}
}

func runE9() {
	header("e9", "section 3.1: runtime switching of the preemptive/non-preemptive mode")
	sys := rtos.NewSystem()
	cpu := sys.NewProcessor("cpu", rtos.Config{NonPreemptive: true})
	var hiStart sim.Time
	cpu.NewTask("background", rtos.TaskConfig{Priority: 1}, func(c *rtos.TaskCtx) {
		c.Execute(100 * sim.Us)
	})
	cpu.NewTask("urgent", rtos.TaskConfig{Priority: 9, StartAt: 10 * sim.Us}, func(c *rtos.TaskCtx) {
		hiStart = c.Now()
		c.Execute(10 * sim.Us)
	})
	sys.NewHWTask("modeSwitch", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		c.Wait(40 * sim.Us)
		cpu.SetPreemptive(true)
	})
	sys.Run()
	fmt.Printf("urgent task ready at 10us; processor non-preemptive until 40us; urgent ran at %v\n", hiStart)
	fmt.Println("paper: \"the preemptive/non-preemptive mode can be changed during the simulation\"")
}

func runE10() {
	header("e10", "ablation: scheduling policies on one periodic task set (section 3.1 genericity)")
	fmt.Printf("%-22s %8s %8s %10s %14s %8s %8s\n",
		"policy", "misses", "preempt", "switches", "worst resp", "load%", "ovhd%")
	for _, r := range experiments.PolicySuite(500 * sim.Ms) {
		fmt.Printf("%-22s %8d %8d %10d %14v %7.2f%% %7.2f%%\n",
			r.Policy, r.DeadlineMisses, r.Preemptions, r.ContextSwitches,
			r.WorstResponse, r.CPULoad*100, r.OverheadRatio*100)
	}
}

func runE11() {
	header("e11", "ablation: bounding priority inversion (plain vs inheritance vs preemption-disable)")
	for _, mode := range []experiments.Figure7Mode{
		experiments.Figure7Plain, experiments.Figure7Inherit, experiments.Figure7NoPreempt,
	} {
		r := experiments.RunInversion(rtos.EngineProcedural, mode)
		fmt.Printf("  %-22s high-priority task waited %v for the resource\n", mode, r.HWait)
	}
	fmt.Println("paper (Fig. 7 discussion): disabling preemption during access avoids the inversion;")
	fmt.Println("priority inheritance is the classical alternative implemented as an extension.")
}

func runE12() {
	header("e12", "validation: simulated worst responses vs exact response-time analysis")
	set := analysis.AssignRM([]analysis.TaskSpec{
		{Name: "t1", Period: 4 * sim.Ms, WCET: 1 * sim.Ms},
		{Name: "t2", Period: 6 * sim.Ms, WCET: 2 * sim.Ms},
		{Name: "t3", Period: 10 * sim.Ms, WCET: 3 * sim.Ms},
	})
	fmt.Print(analysis.Report(set, 0))
	rta, _ := analysis.ResponseTimes(set, 0)
	simulated, misses := experiments.SimulatedResponses(set, rtos.EngineProcedural,
		rtos.Overheads{}, analysis.Hyperperiod(set))
	fmt.Println("simulated worst responses (synchronous release, zero overhead):")
	for _, task := range set {
		match := "EXACT MATCH"
		if simulated[task.Name] != rta.Response[task.Name] {
			match = "MISMATCH"
		}
		fmt.Printf("  %-16s RTA %-10v simulated %-10v [%s]\n",
			task.Name, rta.Response[task.Name], simulated[task.Name], match)
	}
	fmt.Printf("deadline misses in simulation: %d\n", misses)

	okAll := true
	for seed := int64(0); seed < 20; seed++ {
		res, err := experiments.RunRTACrossCheck(seed, 3+int(seed%3), 0.8, rtos.EngineProcedural)
		if err != nil || !res.Exact {
			okAll = false
		}
	}
	fmt.Printf("random sweep (20 task sets at U~0.8): all exact = %v\n", okAll)
	fmt.Println("the model's scheduler, preemption accuracy and periodic machinery agree with the")
	fmt.Println("independent mathematical oracle (Buttazzo, the paper's reference [10]).")
}

func runE13() {
	header("e13", "extension: interrupt handling designs (ISR-only vs ISR+handler vs polling)")
	fmt.Printf("%-12s %14s %16s %10s %10s\n", "variant", "worst latency", "worker slowdown", "isr load", "switches")
	for _, r := range experiments.RunInterruptAblation(200*sim.Us, 20*sim.Ms) {
		fmt.Printf("%-12s %14v %16v %9.2f%% %10d\n",
			r.Variant, r.HandlerWorst, r.WorkerSlowdown, r.ISRLoad*100, r.ContextSwitches)
	}
	fmt.Println("the classical trade-off: ISR-only minimizes latency but steals time invisibly;")
	fmt.Println("the split design pays RTOS switches; polling pays latency up to its period.")
}

func runE14() {
	header("e14", "extension: aperiodic service (background vs polling vs deferrable vs sporadic server)")
	fmt.Printf("%-20s %14s %14s %8s %8s\n", "variant", "mean resp", "worst resp", "misses", "served")
	for _, r := range experiments.RunServerAblation(7, 200*sim.Ms) {
		fmt.Printf("%-20s %14v %14v %8d %8d\n",
			r.Variant, r.MeanResponse, r.WorstResponse, r.PeriodicMisses, r.Served)
	}
	fmt.Println("the textbook ordering: background service is slowest; the deferrable server beats the")
	fmt.Println("polling server by preserving its budget; periodic deadlines hold in every variant.")
}

func runE15() {
	header("e15", "extension: on-chip interconnect bandwidth sweep on the MPEG-2 SoC")
	fmt.Printf("%12s %12s %8s %10s %10s %14s\n",
		"bus ns/byte", "hop time", "bus util", "encoded", "displayed", "worst e2e")
	for _, pb := range []sim.Time{0, 10 * sim.Ns, 50 * sim.Ns, 100 * sim.Ns, 200 * sim.Ns, 400 * sim.Ns} {
		r := mpeg2.Run(mpeg2.Config{BusPerByte: pb}, 10*mpeg2.FramePeriod)
		hop := "-"
		if pb > 0 {
			hop = (sim.Us + mpeg2.SliceBytes*pb).String()
		}
		fmt.Printf("%12v %12s %7.1f%% %10d %10d %14v\n",
			pb, hop, r.BusUtilization*100, r.EncodedSlices, r.DisplayedSlices, r.EncodeWorst)
	}
	fmt.Println("paper section 2: physical constraints (processor, RTOS, communications network) must")
	fmt.Println("enter the early simulation; the sweep shows the interconnect saturating the pipeline.")
}
