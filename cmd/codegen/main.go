// Command codegen generates a FreeRTOS-flavoured C implementation skeleton
// from a JSON scenario description — the paper's stated future work
// ("software generation for a final implementation using commercial RTOS").
//
// Usage:
//
//	codegen scenario.json > system.c
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/scenario"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: codegen [-o out.c] scenario.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	desc, err := scenario.Parse(data)
	if err != nil {
		fatal(err)
	}
	code := codegen.GenerateC(desc)
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(code))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codegen:", err)
	os.Exit(2)
}
