// Command rtossimd serves the simulator as a service: an HTTP/JSON API over
// the same internal/runner pipeline the rtossim CLI uses, with a durable
// in-memory job queue, a content-hash-sharded worker pool, a result cache
// keyed by the scenario's canonical hash, and streaming progress.
//
// Usage:
//
//	rtossimd [-addr :7077] [-shards N] [-queue N] [-cache N] [-journal DIR]
//
// Submit a scenario and read its report:
//
//	curl -s localhost:7077/v1/jobs -d '{"scenario": '"$(cat figure6.json)"'}'
//	curl -s localhost:7077/v1/jobs/j000001/report
//
// The report and trace bytes are identical to `rtossim figure6.json` — both
// run through internal/runner. Resubmitting a semantically identical
// scenario (any field order, any duration spelling) is served from the
// cache without running a simulation.
//
// With -journal DIR the daemon is crash-safe: every accepted submission and
// terminal state is appended (fsynced) to DIR/journal.ndjson and replayed on
// the next start — finished jobs come back with their exact result bytes,
// unfinished jobs are re-enqueued and re-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7077", "listen address (port 0 picks an ephemeral port)")
		shards  = flag.Int("shards", 0, "worker shard count (0: GOMAXPROCS, capped at 8)")
		queue   = flag.Int("queue", 0, "per-shard queue depth (0: 256)")
		cache   = flag.Int("cache", 0, "result cache entries (0: 128, negative: disable)")
		journal = flag.String("journal", "", "crash-safe job journal directory (empty: no durability)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtossimd [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("rtossimd: ")

	srv, err := server.New(server.Config{
		Shards:       *shards,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		Journal:      *journal,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before logging so "listening on" always names the bound address
	// (with -addr :0, the kernel-assigned port) — scripts parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
}
