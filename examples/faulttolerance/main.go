// Fault tolerance: inject faults into a healthy design and watch the
// recovery machinery respond.
//
// Run with:
//
//	go run ./examples/faulttolerance
//
// A control task meets a 100us deadline comfortably — until a WCET-overrun
// fault quadruples its execution time for the first 300us (a cold cache, a
// misbehaving branch). Its restart-on-miss policy abandons each late job at
// the deadline and re-releases immediately. A second, independent fault
// hangs the heartbeat task forever in the middle of one of its jobs; the
// watchdog it feeds notices the missing kick and restarts it. RunChecked
// distinguishes this recovered run from a deadlock, and the fault-tolerance
// metrics quantify the damage.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func main() {
	sys := rtos.NewSystem()
	cpu := sys.NewProcessor("cpu0", rtos.Config{
		Policy:    rtos.PriorityPreemptive{},
		Overheads: rtos.UniformOverheads(2 * sim.Us),
	})

	// A 60us control job every 100us: utilization 0.6, no misses — until
	// the fault makes the job take 240us.
	ctrl := cpu.NewPeriodicTask("ctrl", rtos.TaskConfig{
		Priority: 10,
		Period:   100 * sim.Us,
		Deadline: 100 * sim.Us,
		OnMiss:   rtos.MissRestartTask,
	}, func(c *rtos.TaskCtx, cycle int) {
		c.Execute(60 * sim.Us)
	})
	ctrl.InjectWCETOverrun(rtos.WCETOverrun{Factor: 4, Until: 300 * sim.Us})

	// A short high-priority heartbeat that pets a 150us watchdog once per
	// period — even while ctrl is thrashing, the kicks keep coming.
	var wd *rtos.Watchdog
	beat := cpu.NewPeriodicTask("beat", rtos.TaskConfig{
		Priority: 20,
		Period:   100 * sim.Us,
	}, func(c *rtos.TaskCtx, cycle int) {
		wd.Kick()
		c.Execute(10 * sim.Us)
	})
	wd = cpu.NewWatchdog("beat.wd", 150*sim.Us, beat)
	// Stuck forever in the middle of the job released at 600us: the kicks
	// stop and only the watchdog restart recovers the task.
	beat.InjectHangAt(610*sim.Us, 0)

	rep, err := sys.RunChecked(sim.Ms)
	if err != nil {
		// A deadlock or model panic would land here with per-processor
		// context; the watchdog prevents that.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("finished %v at %v\n\n", rep.Reason, sys.Now())

	m := analysis.ComputeFaultMetrics(sys.Rec.FaultEvents(), sys.Now())
	for _, t := range []*rtos.Task{ctrl, beat} {
		m.Jobs += int(t.CompletedCycles() + t.AbortedCycles())
		m.AbortedJobs += int(t.AbortedCycles())
	}
	m.Misses = len(sys.Constraints.Violations())
	fmt.Print(m.Report())

	fmt.Printf("\nctrl completed %d cycles (%d aborted); beat completed %d (%d aborted); watchdog fired %d time(s)\n",
		ctrl.CompletedCycles(), ctrl.AbortedCycles(), beat.CompletedCycles(), beat.AbortedCycles(), wd.Fired())
}
