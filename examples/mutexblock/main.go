// Mutexblock: the paper's Figure 7 situation — mutual-exclusion blocking on
// a shared variable leading to priority inversion — simulated three ways:
// with a plain lock (the inversion occurs), with preemption disabled around
// the access (the paper's remedy), and with the priority-inheritance
// protocol (the classical alternative, implemented as an extension).
//
// Run with:
//
//	go run ./examples/mutexblock
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/rtos"
	"repro/internal/trace"
)

func main() {
	fmt.Println("Figure 7 reproduction — mutual-exclusion blocking on SharedVar_1")
	fmt.Println()

	plain := experiments.RunFigure7(rtos.EngineProcedural, experiments.Figure7Plain)
	fmt.Print(plain.Sys.Timeline(trace.TimelineOptions{Width: 110, ShowAccesses: true, Legend: true}))
	fmt.Println()
	fmt.Printf("(1) Function_3 preempted during its read at %v (still holding the lock)\n", plain.F3PreemptedInRead)
	fmt.Printf("(2) Function_2 blocks on SharedVar_1 at     %v (waiting-for-resource state)\n", plain.F2BlockedAt)
	fmt.Printf("(3) Function_3 releases at                  %v; Function_2 preempts it and locks at %v\n",
		plain.F3Release, plain.F2GotLockAt)
	fmt.Printf("    Function_2 spent %v waiting on the resource\n", plain.ResourceWait)
	fmt.Println()

	noPre := experiments.RunFigure7(rtos.EngineProcedural, experiments.Figure7NoPreempt)
	fmt.Println("Remedy (paper): disable preemption during the access")
	fmt.Printf("    Function_2 resource wait: %v; but Function_1 reaction latency grows from %v to %v\n",
		noPre.ResourceWait, plain.F1ReactionLatency, noPre.F1ReactionLatency)
	fmt.Println()

	fmt.Println("Classical three-task inversion (low holder, middle hog, high waiter):")
	for _, mode := range []experiments.Figure7Mode{
		experiments.Figure7Plain, experiments.Figure7Inherit, experiments.Figure7NoPreempt,
	} {
		r := experiments.RunInversion(rtos.EngineProcedural, mode)
		fmt.Printf("    %-22s high-priority task blocked for %v\n", mode, r.HWait)
	}
}
