// Preemption: the paper's Figure 6 system — a hardware Clock and three
// software tasks under priority-based preemptive scheduling with 5us RTOS
// overheads — rendered as a TimeLine chart with every annotation of the
// figure measured and printed.
//
// Run with:
//
//	go run ./examples/preemption
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	r := experiments.RunFigure6(experiments.Figure6Config{})

	fmt.Println("Figure 6 reproduction — priority-based preemptive scheduling, 5us overheads")
	fmt.Println()
	fmt.Print(r.Fig.Sys.Timeline(trace.TimelineOptions{
		Width:        110,
		ShowAccesses: true,
		Legend:       true,
	}))
	fmt.Println()
	fmt.Printf("(1) Clk notified at             %v -> Function_1 wakes and preempts Function_3\n", r.ClockEdge)
	fmt.Printf("(b) preemption overhead:        %v (context save + scheduling + context load)\n", r.F1PreemptStart-r.ClockEdge)
	fmt.Printf("(2) Event_1 sent at             %v -> Function_2 ready\n", r.Event1Signal)
	fmt.Printf("(c) overhead on no-preemption:  %v (lower priority: none)\n", r.F2ReadyAt-r.Event1Signal)
	fmt.Printf("    Function_1 ends at          %v\n", r.F1End)
	fmt.Printf("(a) end-of-task overhead:       %v before Function_2 starts at %v\n", r.F2Start-r.F1End, r.F2Start)
	fmt.Printf("    Function_3 resumes at       %v, exactly where it was preempted\n", r.F3ResumeAt)
	fmt.Println()
	fmt.Printf("kernel thread switches: %d (procedural RTOS model)\n", r.Activations)
}
