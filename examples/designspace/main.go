// Designspace: early design-space exploration, the use case that motivates
// the paper ("provide results to help designers in their design-space
// exploration and timing-constraints verification as early as possible").
//
// A fixed periodic workload is evaluated across candidate platforms — RTOS
// overhead classes (fast microkernel vs heavyweight OS vs a formula-based
// scheduler) crossed with scheduling policies — and each candidate gets a
// verdict from the timing-constraint monitor: which platforms meet every
// deadline, at what processor load.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func main() {
	fmt.Println("Design-space exploration: 5 periodic tasks (72% raw utilization), 500ms simulated")
	fmt.Println()
	fmt.Println("Candidate RTOS overhead classes:")
	fmt.Printf("  %-22s %8s %8s %8s %14s\n", "overheads", "misses", "ovhd%", "load%", "mean sched")
	for _, r := range experiments.OverheadSuite(500 * sim.Ms) {
		verdict := "MEETS DEADLINES"
		if r.DeadlineMisses > 0 {
			verdict = fmt.Sprintf("%d MISSES", r.DeadlineMisses)
		}
		fmt.Printf("  %-22s %8d %7.2f%% %7.2f%% %14v  %s\n",
			r.Formula, r.DeadlineMisses, r.OverheadRatio*100, r.CPULoad*100, r.MeanScheduling, verdict)
	}
	fmt.Println()
	fmt.Println("Candidate scheduling policies (10us overheads):")
	fmt.Printf("  %-22s %8s %8s %10s %14s\n", "policy", "misses", "preempt", "switches", "worst resp")
	for _, r := range experiments.PolicySuite(500 * sim.Ms) {
		fmt.Printf("  %-22s %8d %8d %10d %14v\n",
			r.Policy, r.DeadlineMisses, r.Preemptions, r.ContextSwitches, r.WorstResponse)
	}
	fmt.Println()
	fmt.Println("Engine cost of the exploration itself (paper section 4):")
	r := experiments.RunEngineComparison(10, 50*sim.Ms)
	fmt.Printf("  threaded RTOS model:   %7d kernel switches, %v wall\n",
		r.Activations[rtos.EngineThreaded], r.Wall[rtos.EngineThreaded].Round(100000))
	fmt.Printf("  procedural RTOS model: %7d kernel switches, %v wall (the paper's choice)\n",
		r.Activations[rtos.EngineProcedural], r.Wall[rtos.EngineProcedural].Round(100000))
}
