// Mpeg2soc: the paper's section 5 case study — an MPEG-2 compressing and
// decompressing SoC with 18 tasks on six processors, three of them software
// processors running the RTOS model. The example simulates 10 frames at
// 25 fps, then prints throughput, end-to-end latencies, per-processor load
// and the full statistics view.
//
// Run with:
//
//	go run ./examples/mpeg2soc [-load 1.0] [-overhead 5us] [-frames 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpeg2"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	load := flag.Float64("load", 1.0, "encoder execution-time scale factor")
	overhead := flag.String("overhead", "5us", "uniform RTOS overhead on the software processors")
	frames := flag.Int("frames", 10, "number of 40ms frames to simulate")
	stats := flag.Bool("stats", false, "print the full statistics view")
	flag.Parse()

	ov, err := scenario.ParseDuration(*overhead)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	soc := mpeg2.Build(mpeg2.Config{Load: *load, Overhead: ov})
	horizon := sim.Time(*frames) * mpeg2.FramePeriod
	soc.Sys.RunUntil(horizon)

	fmt.Printf("MPEG-2 SoC: %d tasks, 3 software processors with RTOS + hardware blocks\n", soc.TaskCount)
	fmt.Printf("simulated %v (%d frames at 25 fps), RTOS overhead %v, encoder load x%.2f\n",
		horizon, *frames, ov, *load)
	fmt.Println()
	fmt.Printf("encoded slices:   %4d (camera emitted %d)\n", soc.EncodedSlices, *frames*mpeg2.SlicesPerFrame)
	fmt.Printf("displayed slices: %4d\n", soc.DisplayedSlices)
	fmt.Printf("encode latency:   worst %v, mean %v (limit %v)\n",
		soc.EncodeLatency.Worst(), soc.EncodeLatency.Mean(), 2*mpeg2.FramePeriod)
	fmt.Printf("decode latency:   worst %v, mean %v\n", soc.DecodeLatency.Worst(), soc.DecodeLatency.Mean())
	fmt.Println()

	st := soc.Sys.Stats(horizon)
	fmt.Println("software processors:")
	for _, cpu := range []string{"cpu-ctrl", "cpu-enc", "cpu-dec"} {
		if ps, ok := st.ProcessorByName(cpu); ok {
			fmt.Printf("  %-10s load %5.1f%%  rtos %5.2f%%  idle %5.1f%%  context switches %d\n",
				cpu, ps.LoadRatio()*100, ps.OverheadRatio()*100,
				100*(1-ps.LoadRatio()-ps.OverheadRatio()), ps.ContextSwitches)
		}
	}
	fmt.Println()
	fmt.Print(soc.Sys.Constraints.Report())
	if *stats {
		fmt.Println()
		fmt.Print(st.String())
	}
	soc.Sys.Shutdown()

	if !soc.Sys.Constraints.OK() {
		os.Exit(1)
	}
}
