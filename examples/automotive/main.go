// Automotive: an engine-control ECU modelled with the full toolbox —
// periodic control tasks validated by response-time analysis, a crank-angle
// interrupt with a split ISR/handler design, CAN traffic served by a
// deferrable server, and a shared calibration table under priority
// inheritance. The example first checks schedulability analytically, then
// simulates and confirms the analysis.
//
// Run with:
//
//	go run ./examples/automotive
package main

import (
	"fmt"

	rtosmodel "repro"
)

func main() {
	fmt.Println("Engine-control ECU — analysis first, then simulation")
	fmt.Println()

	// --- 1. Analytical schedulability of the periodic control set -------
	specs := rtosmodel.AssignRMSpecs([]rtosmodel.AnalysisTask{
		{Name: "fuel-injection", Period: 2 * rtosmodel.Ms, WCET: 400 * rtosmodel.Us},
		{Name: "ignition", Period: 4 * rtosmodel.Ms, WCET: 600 * rtosmodel.Us},
		{Name: "lambda-control", Period: 10 * rtosmodel.Ms, WCET: 1500 * rtosmodel.Us},
		{Name: "thermal-model", Period: 50 * rtosmodel.Ms, WCET: 5 * rtosmodel.Ms},
	})
	fmt.Print(rtosmodel.SchedulabilityReport(specs, 15*rtosmodel.Us))
	fmt.Println()

	// --- 2. The simulated ECU -------------------------------------------
	sys := rtosmodel.NewSystem()
	cpu := sys.NewProcessor("ecu", rtosmodel.Config{
		Policy:    rtosmodel.PriorityPreemptive{},
		Overheads: rtosmodel.UniformOverheads(5 * rtosmodel.Us),
	})

	// A calibration table shared between lambda control and CAN service;
	// priority inheritance bounds the blocking time.
	calib := rtosmodel.NewInheritShared(sys.Rec, "calibration", 128)

	// Periodic control tasks straight from the analysed specs. Lambda
	// control reads the calibration table inside its budget.
	for _, spec := range specs {
		spec := spec
		cpu.NewPeriodicTask(spec.Name, rtosmodel.TaskConfig{
			Priority: spec.Priority + 10, // leave room above for the crank handler
			Period:   spec.Period,
			Deadline: spec.Period,
		}, func(c *rtosmodel.TaskCtx, cycle int) {
			if spec.Name == "lambda-control" {
				calib.Lock(c)
				c.Execute(spec.WCET)
				_ = calib.Get(c)
				calib.Unlock(c)
				return
			}
			c.Execute(spec.WCET)
		})
	}

	// Crank-angle sensor: an IRQ every 1.2ms (≈2500 rpm, 60-2 wheel) with a
	// tiny ISR deferring to a top-priority handler.
	crank := rtosmodel.NewEvent(sys.Rec, "crank", rtosmodel.Counter)
	crankLatency := sys.Constraints.NewLatency("crank.reaction", 300*rtosmodel.Us)
	irq := cpu.Interrupts().NewIRQ("crank", 10, 2*rtosmodel.Us, func(c *rtosmodel.ISRCtx) {
		c.Execute(3 * rtosmodel.Us)
		crank.Signal(c)
	})
	cpu.NewTask("crank-handler", rtosmodel.TaskConfig{Priority: 100}, func(c *rtosmodel.TaskCtx) {
		for {
			crank.Wait(c)
			c.Execute(80 * rtosmodel.Us)
			crankLatency.Stop()
		}
	})
	sys.NewHWTask("crank-wheel", rtosmodel.HWConfig{}, func(c *rtosmodel.HWCtx) {
		for {
			c.Wait(1200 * rtosmodel.Us)
			crankLatency.Start()
			irq.Raise()
		}
	})

	// CAN diagnostics traffic through a deferrable server: bounded share of
	// the CPU, no impact on control deadlines. Some requests update the
	// calibration table (contending with lambda control).
	can := cpu.NewDeferrableServer("can-server", rtosmodel.ServerConfig{
		Priority: 5, Period: 10 * rtosmodel.Ms, Budget: 1 * rtosmodel.Ms,
	})
	canResp := sys.Constraints.NewLatency("can.response", 20*rtosmodel.Ms)
	canWrites := 0
	sys.NewHWTask("can-bus", rtosmodel.HWConfig{}, func(c *rtosmodel.HWCtx) {
		for i := 0; ; i++ {
			c.Wait(rtosmodel.Time(3+i%5) * rtosmodel.Ms)
			canResp.Start()
			writeCalib := i%4 == 0
			can.Submit(rtosmodel.AperiodicJob{
				Work: 300 * rtosmodel.Us,
				Done: func() {
					if writeCalib {
						canWrites++
					}
					canResp.Stop()
				},
			})
		}
	})

	horizon := 500 * rtosmodel.Ms
	sys.RunUntil(horizon)

	// --- 3. Results -------------------------------------------------------
	fmt.Printf("simulated %v\n\n", horizon)
	st := sys.Stats(horizon)
	if cs, ok := st.ProcessorByName("ecu"); ok {
		fmt.Printf("ecu load %.1f%%, rtos overhead %.2f%%, %d context switches\n",
			cs.LoadRatio()*100, cs.OverheadRatio()*100, cs.ContextSwitches)
	}
	fmt.Printf("crank interrupts serviced: %d (worst ISR latency %v)\n", irq.Serviced(), irq.WorstLatency())
	fmt.Printf("CAN jobs served: %d (%d calibration updates)\n", can.Served(), canWrites)
	fmt.Println()
	fmt.Print(sys.Constraints.Report())
	sys.Shutdown()

	if sys.Constraints.OK() {
		fmt.Println("\nall timing constraints met — matching the analytical verdict above")
	} else {
		fmt.Println("\nTIMING CONSTRAINTS VIOLATED")
	}
}
