// Hwaccel: hardware/software co-simulation at the signal level — the
// mixed-abstraction use case SystemC exists for and the RTOS model plugs
// into. A software task offloads checksums to a hardware accelerator
// modelled with signals (start/busy wires with evaluate/update semantics)
// and a method process, while a background task keeps the processor busy:
// the offloading task blocks through the RTOS, the CPU is reused, and the
// accelerator's completion interrupt preempts the background work.
//
// Run with:
//
//	go run ./examples/hwaccel
package main

import (
	"fmt"

	rtosmodel "repro"
)

func main() {
	sys := rtosmodel.NewSystem()
	k := sys.K
	cpu := sys.NewProcessor("cpu", rtosmodel.Config{
		Overheads: rtosmodel.UniformOverheads(5 * rtosmodel.Us),
	})

	// --- The accelerator, modelled at signal level -----------------------
	start := rtosmodel.NewSignal(k, "accel.start", false)
	busy := rtosmodel.NewSignal(k, "accel.busy", false)
	jobLen := rtosmodel.NewSignal(k, "accel.len", 0)
	doneIRQ := rtosmodel.NewEvent(sys.Rec, "accel.done", rtosmodel.Counter)

	// Control FSM: a method sensitive to the start wire kicks the datapath
	// process, which holds busy for a data-dependent number of cycles.
	kick := k.NewEvent("accel.kick")
	k.NewMethod("accel.ctrl", func() {
		if start.Read() && !busy.Read() {
			busy.Write(true)
			kick.Notify()
		}
	}, false, start.Changed())
	hwDone := 0
	k.Spawn("accel.datapath", func(p *rtosmodel.Proc) {
		for {
			p.WaitEvent(kick)
			// 100ns per word of checksum, fully parallel to the CPU.
			p.Wait(rtosmodel.Time(jobLen.Read()) * 100 * rtosmodel.Ns)
			busy.Write(false)
			hwDone++
			doneIRQ.SignalFrom("accel.datapath")
		}
	})

	// --- Software ---------------------------------------------------------
	turnaround := sys.Constraints.NewLatency("offload.turnaround", 2*rtosmodel.Ms)
	var offloads int
	cpu.NewTask("offloader", rtosmodel.TaskConfig{Priority: 10}, func(c *rtosmodel.TaskCtx) {
		for i := 0; i < 5; i++ {
			c.Execute(50 * rtosmodel.Us) // prepare the buffer
			turnaround.Start()
			jobLen.Write(1000 + 500*i) // words
			start.Write(true)
			doneIRQ.Wait(c) // task blocks; CPU goes to the background task
			start.Write(false)
			turnaround.Stop()
			offloads++
			c.Execute(20 * rtosmodel.Us) // consume the result
			c.Delay(100 * rtosmodel.Us)
		}
	})
	var bgProgress rtosmodel.Time
	cpu.NewTask("background", rtosmodel.TaskConfig{Priority: 1}, func(c *rtosmodel.TaskCtx) {
		for {
			c.Execute(100 * rtosmodel.Us)
			bgProgress += 100 * rtosmodel.Us
		}
	})

	sys.RunUntil(5 * rtosmodel.Ms)

	fmt.Println("HW/SW co-simulation: signal-level accelerator + RTOS-scheduled software")
	fmt.Printf("offloads completed: %d (hardware ran %d jobs)\n", offloads, hwDone)
	fmt.Printf("background progress while offloading: %v of CPU work\n", bgProgress)
	fmt.Printf("offload turnaround: worst %v, mean %v\n", turnaround.Worst(), turnaround.Mean())
	fmt.Println()
	fmt.Print(sys.Timeline(rtosmodel.TimelineOptions{Width: 100, Legend: true}))
	sys.Shutdown()
}
