// Quickstart: two software tasks and a hardware interrupt source on one
// processor with a priority-based preemptive RTOS.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It shows the essential API surface in ~60 lines: build a System, add a
// Processor with an RTOS Config, add Tasks whose behaviours consume time
// with Execute and synchronize through comm relations, run, and inspect the
// timeline and statistics.
package main

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	sys := rtos.NewSystem()

	// One processor, priority-preemptive scheduling, 5us RTOS overheads
	// (context save, scheduling, context load).
	cpu := sys.NewProcessor("cpu0", rtos.Config{
		Policy:    rtos.PriorityPreemptive{},
		Overheads: rtos.UniformOverheads(5 * sim.Us),
	})

	// A hardware interrupt line: an MCSE event relation.
	irq := comm.NewEvent(sys.Rec, "irq", comm.Boolean)

	// The high-priority handler: waits for the interrupt, then handles it.
	cpu.NewTask("handler", rtos.TaskConfig{Priority: 10}, func(c *rtos.TaskCtx) {
		for i := 0; i < 3; i++ {
			irq.Wait(c)
			c.Execute(40 * sim.Us) // handling takes 40us of CPU
		}
	})

	// The low-priority worker: crunches for 1ms, preempted whenever the
	// handler wakes; its remaining work is tracked exactly.
	cpu.NewTask("worker", rtos.TaskConfig{Priority: 1}, func(c *rtos.TaskCtx) {
		c.Execute(1 * sim.Ms)
		fmt.Printf("worker finished at %v\n", c.Now())
	})

	// A hardware device raising the interrupt every 300us.
	sys.NewHWTask("device", rtos.HWConfig{}, func(c *rtos.HWCtx) {
		for i := 0; i < 3; i++ {
			c.Wait(300 * sim.Us)
			irq.Signal(c)
		}
	})

	sys.Run()

	fmt.Println()
	fmt.Print(sys.Timeline(trace.TimelineOptions{Width: 100, Legend: true}))
	fmt.Println()
	fmt.Print(sys.Stats(0).String())
}
