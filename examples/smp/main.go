// SMP: the multi-core extension of the RTOS model. One task set — sensor
// (60us/100us), control (50us/90us), logger (55us/150us), utilization 1.52 —
// is simulated twice on a dual-core processor:
//
//   - partitioned: sensor and logger pinned to core 0, control to core 1.
//     Core 0 carries utilization 0.97 and the response-time recurrence for
//     logger diverges past its deadline — it misses every period.
//   - global: one shared ready queue. Any core takes the next best task, the
//     load spreads (0.76 per core) and every deadline is met, at the price of
//     task migrations between cores.
//
// This is the classical partitioned-vs-global trade: bin-packing loss versus
// migration overhead, here observable on the same model that reproduces the
// paper's single-CPU figures (a single-core processor is the degenerate case
// of both domains).
//
// Run with:
//
//	go run ./examples/smp
package main

import (
	"fmt"

	rtosmodel "repro"
)

func run(domain rtosmodel.SchedDomain, affinities []int) (*rtosmodel.System, *rtosmodel.Processor) {
	sys := rtosmodel.NewSystem()
	cpu := sys.NewProcessor("cpu0", rtosmodel.Config{
		Cores:     2,
		Domain:    domain,
		Overheads: rtosmodel.UniformOverheads(1 * rtosmodel.Us),
	})
	specs := []struct {
		name   string
		prio   int
		period rtosmodel.Time
		exec   rtosmodel.Time
		start  rtosmodel.Time
	}{
		{"sensor", 3, 100 * rtosmodel.Us, 60 * rtosmodel.Us, 0},
		{"control", 2, 90 * rtosmodel.Us, 50 * rtosmodel.Us, 0},
		{"logger", 1, 150 * rtosmodel.Us, 55 * rtosmodel.Us, 5 * rtosmodel.Us},
	}
	for i, s := range specs {
		s := s
		cpu.NewPeriodicTask(s.name, rtosmodel.TaskConfig{
			Priority: s.prio,
			Period:   s.period,
			StartAt:  s.start,
			Affinity: affinities[i],
		}, func(c *rtosmodel.TaskCtx, cycle int) {
			c.Execute(s.exec)
		})
	}
	sys.RunUntil(3 * rtosmodel.Ms)
	sys.Shutdown()
	return sys, cpu
}

func report(label string, sys *rtosmodel.System, cpu *rtosmodel.Processor) int {
	misses := len(sys.Constraints.Violations())
	fmt.Printf("%-12s deadline misses: %-3d migrations: %-3d\n", label, misses, cpu.Migrations())
	for _, l := range rtosmodel.CoreLoads(sys.Rec, 0) {
		fmt.Printf("  core %d: load %5.1f%%  dispatches %-3d migrations in %d\n",
			l.Core, 100*l.LoadRatio(), l.Dispatches, l.MigrationsIn)
	}
	return misses
}

func main() {
	fmt.Println("Dual-core RTOS model: partitioned vs global scheduling of one task set")
	fmt.Println()

	sysP, cpuP := run(rtosmodel.DomainPartitioned, []int{0, 1, 0})
	missP := report("partitioned", sysP, cpuP)
	fmt.Println()
	sysG, cpuG := run(rtosmodel.DomainGlobal, []int{0, 0, 0})
	missG := report("global", sysG, cpuG)

	fmt.Println()
	switch {
	case missP > 0 && missG == 0:
		fmt.Println("partitioned scheduling overloads core 0; the global domain meets every")
		fmt.Println("deadline by migrating tasks to whichever core is free.")
	default:
		fmt.Println("unexpected outcome — the task set was tuned so that only the")
		fmt.Println("partitioned domain misses; re-check the model.")
	}
}
