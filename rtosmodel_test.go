package rtosmodel_test

// Tests of the public facade: everything a downstream user touches is
// reachable and behaves through package rtosmodel alone.

import (
	"strings"
	"testing"

	rtosmodel "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	sys := rtosmodel.NewSystem()
	cpu := sys.NewProcessor("cpu0", rtosmodel.Config{
		Policy:    rtosmodel.PriorityPreemptive{},
		Overheads: rtosmodel.UniformOverheads(5 * rtosmodel.Us),
	})
	irqEvent := rtosmodel.NewEvent(sys.Rec, "irq", rtosmodel.Boolean)
	queue := rtosmodel.NewQueue[string](sys.Rec, "mail", 4)
	shared := rtosmodel.NewShared(sys.Rec, "config", 7)
	react := sys.Constraints.NewLatency("react", 100*rtosmodel.Us)

	var handled []string
	cpu.NewTask("handler", rtosmodel.TaskConfig{Priority: 10}, func(c *rtosmodel.TaskCtx) {
		for i := 0; i < 2; i++ {
			irqEvent.Wait(c)
			c.Execute(10 * rtosmodel.Us)
			react.Stop()
			queue.Put(c, "handled")
		}
	})
	cpu.NewTask("worker", rtosmodel.TaskConfig{Priority: 1}, func(c *rtosmodel.TaskCtx) {
		for i := 0; i < 2; i++ {
			handled = append(handled, queue.Get(c))
			shared.Lock(c)
			c.Execute(5 * rtosmodel.Us)
			shared.Set(c, shared.Get(c)+1)
			shared.Unlock(c)
		}
	})
	sys.NewHWTask("device", rtosmodel.HWConfig{}, func(c *rtosmodel.HWCtx) {
		for i := 0; i < 2; i++ {
			c.Wait(200 * rtosmodel.Us)
			react.Start()
			irqEvent.Signal(c)
		}
	})
	sys.Run()

	if len(handled) != 2 {
		t.Fatalf("handled = %v", handled)
	}
	if !sys.Constraints.OK() {
		t.Fatalf("violations: %v", sys.Constraints.Violations())
	}
	// At each interrupt the processor is idle (the worker is blocked on the
	// empty queue), so the reaction is scheduling+load (10us) + work (10us).
	if react.Worst() != 20*rtosmodel.Us {
		t.Fatalf("worst reaction = %v, want 20us (10us dispatch + 10us work)", react.Worst())
	}
	st := sys.Stats(0)
	if _, ok := st.TaskByName("handler"); !ok {
		t.Fatal("handler missing from stats")
	}
	tl := sys.Timeline(rtosmodel.TimelineOptions{Width: 80, Legend: true})
	if !strings.Contains(tl, "handler") || !strings.Contains(tl, "device") {
		t.Fatalf("timeline incomplete:\n%s", tl)
	}
}

func TestFacadeEngines(t *testing.T) {
	for _, eng := range []rtosmodel.EngineKind{rtosmodel.EngineProcedural, rtosmodel.EngineThreaded} {
		sys := rtosmodel.NewSystem()
		cpu := sys.NewProcessor("cpu", rtosmodel.Config{Engine: eng})
		var end rtosmodel.Time
		cpu.NewTask("t", rtosmodel.TaskConfig{}, func(c *rtosmodel.TaskCtx) {
			c.Execute(42 * rtosmodel.Us)
			end = c.Now()
		})
		sys.Run()
		if end != 42*rtosmodel.Us {
			t.Fatalf("engine %v: end = %v", eng, end)
		}
	}
}

func TestFacadeInterrupts(t *testing.T) {
	sys := rtosmodel.NewSystem()
	cpu := sys.NewProcessor("cpu", rtosmodel.Config{})
	var isrRan bool
	irq := cpu.Interrupts().NewIRQ("line", 1, rtosmodel.Us, func(c *rtosmodel.ISRCtx) {
		c.Execute(rtosmodel.Us)
		isrRan = true
	})
	sys.NewHWTask("dev", rtosmodel.HWConfig{}, func(c *rtosmodel.HWCtx) {
		c.Wait(10 * rtosmodel.Us)
		irq.Raise()
	})
	sys.Run()
	if !isrRan || irq.Serviced() != 1 {
		t.Fatal("ISR did not run through the facade")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	set := rtosmodel.AssignRMSpecs([]rtosmodel.AnalysisTask{
		{Name: "a", Period: 10 * rtosmodel.Ms, WCET: 2 * rtosmodel.Ms},
		{Name: "b", Period: 20 * rtosmodel.Ms, WCET: 4 * rtosmodel.Ms},
	})
	if u := rtosmodel.TaskSetUtilization(set); u != 0.4 {
		t.Fatalf("utilization = %v", u)
	}
	if rtosmodel.LiuLaylandBound(2) < 0.8 {
		t.Fatal("LL bound wrong")
	}
	rta, err := rtosmodel.ResponseTimes(set, 0)
	if err != nil || !rta.Schedulable {
		t.Fatalf("rta = %+v, %v", rta, err)
	}
	if ok, err := rtosmodel.EDFSchedulable(set); err != nil || !ok {
		t.Fatalf("edf = %v, %v", ok, err)
	}
	if !strings.Contains(rtosmodel.SchedulabilityReport(set, 0), "schedulable=true") {
		t.Fatal("report wrong")
	}
}

func TestFacadeScenario(t *testing.T) {
	src := `{
	  "horizon": "1ms",
	  "processors": [{"name": "cpu"}],
	  "tasks": [{"name": "t", "processor": "cpu", "body": [{"op": "execute", "for": "10us"}]}]
	}`
	desc, err := rtosmodel.ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	built, err := desc.Build()
	if err != nil {
		t.Fatal(err)
	}
	built.Run()
	if built.Sys.Now() != 10*rtosmodel.Us {
		t.Fatalf("now = %v", built.Sys.Now())
	}
	if d, err := rtosmodel.ParseDuration("2.5ms"); err != nil || d != 2500*rtosmodel.Us {
		t.Fatalf("ParseDuration = %v, %v", d, err)
	}
}

func TestFacadeKernelAndSignals(t *testing.T) {
	sys := rtosmodel.NewSystem()
	k := sys.K
	sig := rtosmodel.NewSignal(k, "wire", false)
	clk := k.NewClock("clk", 10*rtosmodel.Us, 0)
	edges := 0
	k.Spawn("driver", func(p *rtosmodel.Proc) {
		for i := 0; i < 3; i++ {
			p.WaitEvent(clk.Tick())
			sig.Write(!sig.Read())
		}
	})
	k.Spawn("observer", func(p *rtosmodel.Proc) {
		for {
			p.WaitEvent(sig.Changed())
			edges++
		}
	})
	sys.RunUntil(100 * rtosmodel.Us)
	sys.Shutdown()
	if edges != 3 {
		t.Fatalf("edges = %d, want 3", edges)
	}
}

func TestFacadeMutexProtocols(t *testing.T) {
	sys := rtosmodel.NewSystem()
	if m := rtosmodel.NewMutex(sys.Rec, "plain"); m.Name() != "plain" {
		t.Fatal("mutex name")
	}
	if m := rtosmodel.NewInheritMutex(sys.Rec, "pip"); m.Name() != "pip" {
		t.Fatal("inherit mutex name")
	}
	if m := rtosmodel.NewCeilingMutex(sys.Rec, "pcp", 10); m.Name() != "pcp" {
		t.Fatal("ceiling mutex name")
	}
	if s := rtosmodel.NewInheritShared(sys.Rec, "sv", 1); s.Name() != "sv" {
		t.Fatal("inherit shared name")
	}
	sys.Shutdown()
}
