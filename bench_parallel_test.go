package rtosmodel_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/psim"
	"repro/internal/scenario"
)

// parallelSoCJSON builds an n-stage decoder pipeline plus per-stage
// background load, one processor per stage, each stage on its own shard:
// the workload BenchmarkParallelSoC shards across kernels. Stages couple
// only through latency-bearing NoC links, so the conservative engine can
// overlap their simulation.
func parallelSoCJSON(stages int) string {
	var b strings.Builder
	b.WriteString(`{"name": "parallel-soc", "horizon": "20ms", "processors": [`)
	for i := 0; i < stages; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `{"name": "cpu%d", "shard": "s%d", "overheads": {"scheduling": "500ns", "contextSave": "1us", "contextLoad": "1us"}}`, i, i)
	}
	b.WriteString(`], "buses": [`)
	for i := 0; i+1 < stages; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `{"name": "link%d", "perByte": "2ns", "arbitration": "150ns"}`, i)
	}
	b.WriteString(`], "channels": [`)
	for i := 0; i+1 < stages; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `{"name": "ch%d", "bus": "link%d", "capacity": 16, "messageBytes": 1024}`, i, i)
	}
	b.WriteString(`], "tasks": [`)
	for i := 0; i < stages; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		// Background load: three periodic tasks per stage keep every kernel's
		// scheduler busy independently of the pipeline traffic.
		fmt.Fprintf(&b, `{"name": "bg%d_a", "processor": "cpu%d", "priority": 3, "period": "50us", "body": [{"op": "execute", "for": "7us"}]}, `, i, i)
		fmt.Fprintf(&b, `{"name": "bg%d_b", "processor": "cpu%d", "priority": 2, "period": "70us", "body": [{"op": "execute", "for": "9us"}]}, `, i, i)
		fmt.Fprintf(&b, `{"name": "bg%d_c", "processor": "cpu%d", "priority": 1, "period": "110us", "body": [{"op": "execute", "for": "11us"}]}, `, i, i)
		switch {
		case i == 0:
			fmt.Fprintf(&b, `{"name": "stage0", "processor": "cpu0", "priority": 8, "period": "100us", "body": [{"op": "execute", "for": "15us"}, {"op": "send", "channel": "ch0", "value": 1}]}`)
		case i == stages-1:
			fmt.Fprintf(&b, `{"name": "stage%d", "processor": "cpu%d", "priority": 8, "loop": true, "body": [{"op": "recv", "channel": "ch%d"}, {"op": "execute", "for": "18us"}]}`, i, i, i-1)
		default:
			fmt.Fprintf(&b, `{"name": "stage%d", "processor": "cpu%d", "priority": 8, "loop": true, "body": [{"op": "recv", "channel": "ch%d"}, {"op": "execute", "for": "18us"}, {"op": "send", "channel": "ch%d", "value": 1}]}`, i, i, i-1, i)
		}
	}
	b.WriteString(`]}`)
	return b.String()
}

// BenchmarkParallelSoC measures the sharded multi-kernel engine against the
// sequential kernel on a 4-stage pipeline SoC: "seq" elaborates and runs the
// whole system on one kernel, "shards=N" partitions it onto N kernels
// synchronized by channel lookahead. Speedup requires free host cores; on a
// single-core host the parallel variants measure pure synchronization
// overhead. BENCH_PR10.json records the numbers with the host core count.
func BenchmarkParallelSoC(b *testing.B) {
	js := parallelSoCJSON(4)
	b.Run("seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			desc, err := scenario.Parse([]byte(js))
			if err != nil {
				b.Fatal(err)
			}
			built, err := desc.Build()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := built.RunChecked(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				desc, err := scenario.Parse([]byte(js))
				if err != nil {
					b.Fatal(err)
				}
				plan, err := desc.Partition(n)
				if err != nil {
					b.Fatal(err)
				}
				res, err := psim.Run(desc, plan)
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}
